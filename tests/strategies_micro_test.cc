// Integration tests: every strategy engine must produce bit-exact results
// against the reference oracle on the microbenchmark queries (§IV-B),
// across the selectivity range and the technique-forcing knobs.

#include <gtest/gtest.h>

#include <memory>

#include "engine/reference_engine.h"
#include "micro/micro.h"
#include "strategies/strategy.h"
#include "strategies/swole.h"

namespace swole {
namespace {

// Small but non-trivial scale: several tiles, both S sizes exercised,
// r_rows deliberately not a multiple of the tile size.
MicroConfig TestConfig() {
  MicroConfig config;
  config.r_rows = 20'001;
  config.s_small_rows = 100;
  config.s_large_rows = 3'000;
  config.c_cardinalities = {10, 97, 1'000, 4'000};
  config.seed = 7;
  return config;
}

class MicroStrategiesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = MicroData::Generate(TestConfig()).release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  // Runs `plan` through the oracle and every engine; all must agree.
  static void CheckAllStrategies(const QueryPlan& plan) {
    ReferenceEngine oracle(data_->catalog);
    Result<QueryResult> expected = oracle.Execute(plan);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kHybrid,
          StrategyKind::kRof, StrategyKind::kSwole}) {
      StrategyOptions options;
      options.tile_size = 1024;
      std::unique_ptr<Strategy> engine =
          MakeStrategy(kind, data_->catalog, options);
      Result<QueryResult> actual = engine->Execute(plan);
      ASSERT_TRUE(actual.ok())
          << engine->name() << ": " << actual.status().ToString();
      EXPECT_EQ(*actual, *expected)
          << engine->name() << " diverges on " << plan.name << "\nexpected:\n"
          << expected->ToString() << "actual:\n"
          << actual->ToString();
    }
  }

  // Runs `plan` through SWOLE with each forced aggregation technique.
  static void CheckForcedSwoleVariants(const QueryPlan& plan) {
    ReferenceEngine oracle(data_->catalog);
    Result<QueryResult> expected = oracle.Execute(plan);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    for (StrategyOptions::ForceAgg force :
         {StrategyOptions::ForceAgg::kValueMasking,
          StrategyOptions::ForceAgg::kKeyMasking,
          StrategyOptions::ForceAgg::kHybridFallback}) {
      StrategyOptions options;
      options.force_agg = force;
      std::unique_ptr<SwoleStrategy> engine =
          MakeSwoleStrategy(data_->catalog, options);
      Result<QueryResult> actual = engine->Execute(plan);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(*actual, *expected)
          << "forced " << static_cast<int>(force) << " diverges on "
          << plan.name;
    }
  }

  static MicroData* data_;
};

MicroData* MicroStrategiesTest::data_ = nullptr;

class MicroQ1Sweep : public MicroStrategiesTest,
                     public ::testing::WithParamInterface<int64_t> {};

TEST_P(MicroQ1Sweep, MultiplicationAllStrategiesAgree) {
  CheckAllStrategies(MicroQ1(/*division=*/false, GetParam()));
}

TEST_P(MicroQ1Sweep, DivisionAllStrategiesAgree) {
  CheckAllStrategies(MicroQ1(/*division=*/true, GetParam()));
}

TEST_P(MicroQ1Sweep, ForcedTechniquesAgree) {
  CheckForcedSwoleVariants(MicroQ1(/*division=*/false, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Selectivities, MicroQ1Sweep,
                         ::testing::Values(0, 1, 13, 50, 95, 100));

class MicroQ2Sweep
    : public MicroStrategiesTest,
      public ::testing::WithParamInterface<std::tuple<int, int64_t>> {};

TEST_P(MicroQ2Sweep, GroupByAllStrategiesAgree) {
  auto [card_index, sel] = GetParam();
  const std::string& column = data_->c_columns[card_index];
  CheckAllStrategies(MicroQ2(column, data_->c_actual[card_index], sel));
}

TEST_P(MicroQ2Sweep, ForcedTechniquesAgree) {
  auto [card_index, sel] = GetParam();
  const std::string& column = data_->c_columns[card_index];
  CheckForcedSwoleVariants(
      MicroQ2(column, data_->c_actual[card_index], sel));
}

INSTANTIATE_TEST_SUITE_P(
    CardinalityBySelectivity, MicroQ2Sweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 45, 100)));

class MicroQ3Sweep : public MicroStrategiesTest,
                     public ::testing::WithParamInterface<int64_t> {};

TEST_P(MicroQ3Sweep, ReuseOneAttribute) {
  CheckAllStrategies(MicroQ3(/*reuse_both=*/false, GetParam()));
}

TEST_P(MicroQ3Sweep, ReuseBothAttributes) {
  CheckAllStrategies(MicroQ3(/*reuse_both=*/true, GetParam()));
}

TEST_P(MicroQ3Sweep, AccessMergingDisabledStillCorrect) {
  QueryPlan plan = MicroQ3(/*reuse_both=*/false, GetParam());
  ReferenceEngine oracle(data_->catalog);
  QueryResult expected = oracle.Execute(plan).value();

  StrategyOptions options;
  options.enable_access_merging = false;
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(data_->catalog, options);
  QueryResult actual = engine->Execute(plan).value();
  EXPECT_EQ(actual, expected);
  EXPECT_FALSE(engine->last_decisions().used_access_merging);
}

INSTANTIATE_TEST_SUITE_P(Selectivities, MicroQ3Sweep,
                         ::testing::Values(0, 30, 100));

TEST_F(MicroStrategiesTest, Q3AccessMergingActuallyEngages) {
  StrategyOptions options;
  options.force_agg = StrategyOptions::ForceAgg::kValueMasking;
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(data_->catalog, options);
  ASSERT_TRUE(engine->Execute(MicroQ3(false, 30)).ok());
  EXPECT_TRUE(engine->last_decisions().used_access_merging);
}

class MicroQ4Sweep
    : public MicroStrategiesTest,
      public ::testing::WithParamInterface<
          std::tuple<bool, int64_t, int64_t>> {};

TEST_P(MicroQ4Sweep, JoinAllStrategiesAgree) {
  auto [large, sel1, sel2] = GetParam();
  CheckAllStrategies(MicroQ4(large, sel1, sel2));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MicroQ4Sweep,
    ::testing::Combine(::testing::Bool(), ::testing::Values(10, 90),
                       ::testing::Values(0, 10, 90, 100)));

TEST_F(MicroStrategiesTest, Q4BitmapsDisabledStillCorrect) {
  QueryPlan plan = MicroQ4(/*large_s=*/true, 50, 50);
  ReferenceEngine oracle(data_->catalog);
  QueryResult expected = oracle.Execute(plan).value();

  StrategyOptions options;
  options.enable_positional_bitmaps = false;
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(data_->catalog, options);
  QueryResult actual = engine->Execute(plan).value();
  EXPECT_EQ(actual, expected);
}

class MicroQ5Sweep
    : public MicroStrategiesTest,
      public ::testing::WithParamInterface<std::tuple<bool, int64_t>> {};

TEST_P(MicroQ5Sweep, GroupjoinAllStrategiesAgree) {
  auto [large, sel] = GetParam();
  int64_t s_rows = large ? TestConfig().s_large_rows
                         : TestConfig().s_small_rows;
  CheckAllStrategies(MicroQ5(large, sel, s_rows));
}

TEST_P(MicroQ5Sweep, EagerAggregationForcedOnAndOffAgree) {
  auto [large, sel] = GetParam();
  int64_t s_rows = large ? TestConfig().s_large_rows
                         : TestConfig().s_small_rows;
  QueryPlan plan = MicroQ5(large, sel, s_rows);
  ReferenceEngine oracle(data_->catalog);
  QueryResult expected = oracle.Execute(plan).value();

  // EA disabled -> groupjoin path.
  {
    StrategyOptions options;
    options.enable_eager_aggregation = false;
    std::unique_ptr<SwoleStrategy> engine =
        MakeSwoleStrategy(data_->catalog, options);
    QueryResult actual = engine->Execute(plan).value();
    EXPECT_EQ(actual, expected) << "groupjoin path";
    EXPECT_FALSE(engine->last_decisions().used_eager_aggregation);
  }
  // EA made irresistible by a profile with brutal lookup costs.
  {
    StrategyOptions options;
    CostProfile profile = CostProfile::Default();
    profile.ht_lookup_l1 = profile.ht_lookup_l2 = profile.ht_lookup_l3 =
        profile.ht_lookup_mem = 1000.0;
    profile.read_cond = 1000.0;
    profile.ht_delete = 0.1;
    options.cost_profile = &profile;
    std::unique_ptr<SwoleStrategy> engine =
        MakeSwoleStrategy(data_->catalog, options);
    QueryResult actual = engine->Execute(plan).value();
    EXPECT_EQ(actual, expected) << "eager aggregation path";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MicroQ5Sweep,
    ::testing::Combine(::testing::Bool(), ::testing::Values(0, 30, 100)));

TEST_F(MicroStrategiesTest, Q5EagerAggregationEngagesWithCheapDeletes) {
  // With a profile where lookups are expensive and deletes cheap, the
  // cost model must pick EA, and the decision must be visible.
  StrategyOptions options;
  CostProfile profile = CostProfile::Default();
  profile.ht_lookup_l1 = profile.ht_lookup_l2 = profile.ht_lookup_l3 =
      profile.ht_lookup_mem = 1000.0;
  profile.read_cond = 1000.0;
  profile.ht_delete = 0.1;
  options.cost_profile = &profile;
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(data_->catalog, options);
  QueryPlan plan = MicroQ5(false, 50, TestConfig().s_small_rows);
  ASSERT_TRUE(engine->Execute(plan).ok());
  EXPECT_TRUE(engine->last_decisions().used_eager_aggregation);
}

TEST_F(MicroStrategiesTest, CompressedBitmapsStillCorrect) {
  ReferenceEngine oracle(data_->catalog);
  for (int64_t sel2 : {0, 3, 50, 97, 100}) {
    QueryPlan plan = MicroQ4(/*large_s=*/true, 60, sel2);
    QueryResult expected = oracle.Execute(plan).value();
    StrategyOptions options;
    options.use_compressed_bitmaps = true;
    QueryResult actual = MakeStrategy(StrategyKind::kSwole, data_->catalog,
                                      options)
                             ->Execute(plan)
                             .value();
    EXPECT_EQ(actual, expected) << "build sel " << sel2;
  }
}

TEST_F(MicroStrategiesTest, TileSizeDoesNotChangeResults) {
  QueryPlan plan = MicroQ1(false, 37);
  ReferenceEngine oracle(data_->catalog);
  QueryResult expected = oracle.Execute(plan).value();
  for (int64_t tile : {64, 100, 1024, 4096}) {
    StrategyOptions options;
    options.tile_size = tile;
    for (StrategyKind kind : {StrategyKind::kHybrid, StrategyKind::kRof,
                              StrategyKind::kSwole}) {
      QueryResult actual =
          MakeStrategy(kind, data_->catalog, options)->Execute(plan).value();
      EXPECT_EQ(actual, expected)
          << StrategyKindName(kind) << " tile=" << tile;
    }
  }
}

}  // namespace
}  // namespace swole
