// Unit tests for the shared linear-probing hash table: insert/find/erase,
// growth, tombstone reuse, the reserved throwaway (mask) key, payload
// widths, and a randomized differential test against std::unordered_map.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "exec/hash_table.h"

namespace swole {
namespace {

TEST(HashTableTest, InsertAndFind) {
  HashTable table(/*payload_width=*/2);
  int64_t* p = table.GetOrInsert(42);
  EXPECT_EQ(p[0], 0);  // zero-initialized
  p[0] = 7;
  p[1] = -1;
  EXPECT_EQ(table.size(), 1);
  int64_t* q = table.GetOrInsert(42);
  EXPECT_EQ(q[0], 7);
  EXPECT_EQ(q[1], -1);
  EXPECT_EQ(table.size(), 1);
  EXPECT_EQ(table.Find(43), nullptr);
  EXPECT_TRUE(table.Contains(42));
}

TEST(HashTableTest, GrowthPreservesPayloads) {
  HashTable table(/*payload_width=*/1, /*expected_keys=*/4);
  for (int64_t k = 0; k < 10000; ++k) {
    *table.GetOrInsert(k * 3) = k;
  }
  EXPECT_EQ(table.size(), 10000);
  for (int64_t k = 0; k < 10000; ++k) {
    const int64_t* p = table.Find(k * 3);
    ASSERT_NE(p, nullptr) << k;
    EXPECT_EQ(*p, k);
  }
  EXPECT_EQ(table.Find(1), nullptr);
}

TEST(HashTableTest, EraseAndTombstoneReuse) {
  HashTable table(/*payload_width=*/1, 64);
  for (int64_t k = 0; k < 50; ++k) *table.GetOrInsert(k) = k;
  for (int64_t k = 0; k < 50; k += 2) EXPECT_TRUE(table.Erase(k));
  EXPECT_FALSE(table.Erase(100));
  EXPECT_EQ(table.size(), 25);
  for (int64_t k = 0; k < 50; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(table.Find(k), nullptr) << k;
    } else {
      ASSERT_NE(table.Find(k), nullptr) << k;
      EXPECT_EQ(*table.Find(k), k);
    }
  }
  // Re-inserting an erased key lands in a tombstone with zeroed payload.
  int64_t* p = table.GetOrInsert(10);
  EXPECT_EQ(*p, 0);
  EXPECT_EQ(table.size(), 26);
}

TEST(HashTableTest, FindAfterEraseProbesThroughTombstones) {
  // Force a probe chain, then erase an element in the middle.
  HashTable table(/*payload_width=*/0, 16);
  std::vector<int64_t> keys;
  for (int64_t k = 0; k < 12; ++k) keys.push_back(k * 7919);
  for (int64_t key : keys) table.GetOrInsert(key);
  table.Erase(keys[3]);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(table.Contains(keys[i]), i != 3) << i;
  }
}

TEST(HashTableTest, MaskKeyIsOrdinary) {
  HashTable table(/*payload_width=*/1);
  *table.GetOrInsert(HashTable::kMaskKey) = 99;
  EXPECT_TRUE(table.Contains(HashTable::kMaskKey));
  EXPECT_EQ(*table.Find(HashTable::kMaskKey), 99);
}

TEST(HashTableTest, WidthZeroActsAsSet) {
  HashTable table(/*payload_width=*/0, 8);
  for (int64_t k = -100; k < 100; k += 7) {
    EXPECT_NE(table.GetOrInsert(k), nullptr);
  }
  EXPECT_TRUE(table.Contains(-100));
  EXPECT_FALSE(table.Contains(-99));
}

TEST(HashTableTest, ForEachVisitsExactlyLiveEntries) {
  HashTable table(/*payload_width=*/1, 16);
  for (int64_t k = 0; k < 30; ++k) *table.GetOrInsert(k) = k * k;
  table.Erase(5);
  table.Erase(17);
  std::unordered_map<int64_t, int64_t> seen;
  table.ForEach([&](int64_t key, const int64_t* payload) {
    EXPECT_TRUE(seen.emplace(key, *payload).second) << "duplicate " << key;
  });
  EXPECT_EQ(seen.size(), 28u);
  EXPECT_EQ(seen.count(5), 0u);
  EXPECT_EQ(seen.at(7), 49);
}

TEST(HashTableTest, DifferentialAgainstStdMap) {
  Rng rng(123);
  HashTable table(/*payload_width=*/1, 16);
  std::unordered_map<int64_t, int64_t> model;
  for (int step = 0; step < 50000; ++step) {
    int64_t key = rng.UniformInt(-500, 500);
    double action = rng.UniformDouble();
    if (action < 0.6) {
      *table.GetOrInsert(key) += 1;
      model[key] += 1;
    } else if (action < 0.8) {
      bool erased = table.Erase(key);
      EXPECT_EQ(erased, model.erase(key) > 0) << "step " << step;
    } else {
      const int64_t* p = table.Find(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(p, nullptr) << "step " << step;
      } else {
        ASSERT_NE(p, nullptr) << "step " << step;
        EXPECT_EQ(*p, it->second) << "step " << step;
      }
    }
  }
  EXPECT_EQ(table.size(), static_cast<int64_t>(model.size()));
}

TEST(HashTableTest, NegativeAndExtremeKeys) {
  HashTable table(/*payload_width=*/1);
  for (int64_t key : {int64_t{0}, int64_t{-1}, INT64_MAX, INT64_MIN + 3}) {
    *table.GetOrInsert(key) = key;
  }
  for (int64_t key : {int64_t{0}, int64_t{-1}, INT64_MAX, INT64_MIN + 3}) {
    ASSERT_NE(table.Find(key), nullptr);
    EXPECT_EQ(*table.Find(key), key);
  }
}

TEST(HashTableTest, ByteSizeGrowsWithCapacity) {
  HashTable small(/*payload_width=*/1, 16);
  HashTable big(/*payload_width=*/1, 100000);
  EXPECT_GT(big.ByteSize(), small.ByteSize());
  EXPECT_GE(big.capacity(), 100000 * 10 / 7);
}

}  // namespace
}  // namespace swole
