// Differential tests for the explicit SIMD backends (exec/simd.h): for
// every primitive, every backend the host supports must produce
// byte-identical results to the scalar reference loops — across tile
// lengths that are not multiples of any vector width, empty tiles, all-0
// and all-1 masks, and INT64_MIN/INT64_MAX extreme values. A final set of
// query-level checks runs every strategy engine under every backend at
// 1/2/8 threads against the reference oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include "engine/reference_engine.h"
#include "exec/hash_table.h"
#include "exec/kernels.h"
#include "exec/simd.h"
#include "micro/micro.h"
#include "strategies/strategy.h"

namespace swole {
namespace {

using simd::Backend;
using simd::CmpOp;

// Lengths chosen to straddle the SWAR word (8) and AVX2 vector (4/8/16/32
// lanes) boundaries, plus empty and odd tails.
const int64_t kLens[] = {0,  1,  3,  7,  8,   9,   15,  16,   17,  31,
                         32, 33, 63, 64, 100, 255, 256, 1000, 1024, 1027};

const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                      CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};

// Restores the dispatched backend when a test scope exits.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::ActiveBackend()) {}
  ~BackendGuard() { simd::SetBackend(saved_); }

 private:
  Backend saved_;
};

// The backends this host can actually run (requests for unsupported tiers
// clamp down in SetBackend, which would silently test a tier twice).
std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends = {Backend::kScalar, Backend::kSwar};
  if (simd::CpuHasAvx2()) backends.push_back(Backend::kAvx2);
  return backends;
}

// Non-scalar backends to diff against the scalar reference.
std::vector<Backend> AltBackends() {
  std::vector<Backend> backends = SupportedBackends();
  backends.erase(backends.begin());
  return backends;
}

template <typename T>
std::vector<T> RandomValues(std::mt19937_64* rng, int64_t len,
                            bool extremes) {
  std::uniform_int_distribution<int64_t> dist(
      std::numeric_limits<T>::min(), std::numeric_limits<T>::max());
  std::vector<T> v(static_cast<size_t>(len) + 1);  // +1: len 0 stays valid
  for (int64_t j = 0; j < len; ++j) {
    v[j] = static_cast<T>(dist(*rng));
  }
  if (extremes && len >= 2) {
    v[0] = std::numeric_limits<T>::min();
    v[1] = std::numeric_limits<T>::max();
  }
  return v;
}

// kind: 0 = random 0/1, 1 = all zeros, 2 = all ones.
std::vector<uint8_t> MaskBytes(std::mt19937_64* rng, int64_t len, int kind) {
  std::vector<uint8_t> m(static_cast<size_t>(len) + 1);
  for (int64_t j = 0; j < len; ++j) {
    m[j] = kind == 2 ? 1 : (kind == 0 ? static_cast<uint8_t>((*rng)() & 1)
                                      : 0);
  }
  return m;
}

template <typename T>
void CheckCompareLit() {
  std::mt19937_64 rng(42);
  for (int64_t len : kLens) {
    std::vector<T> col = RandomValues<T>(&rng, len, /*extremes=*/true);
    // In-range, boundary, and (for narrow types) out-of-range literals —
    // the latter exercise the constant-result precheck.
    const int64_t lits[] = {
        len > 0 ? static_cast<int64_t>(col[len / 2]) : 0,
        static_cast<int64_t>(std::numeric_limits<T>::min()),
        static_cast<int64_t>(std::numeric_limits<T>::max()),
        std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max()};
    for (CmpOp op : kOps) {
      for (int64_t lit : lits) {
        std::vector<uint8_t> expected(static_cast<size_t>(len) + 1, 0xAB);
        simd::SetBackend(Backend::kScalar);
        simd::CompareLit<T>(op, col.data(), lit, expected.data(), len);
        for (Backend b : AltBackends()) {
          std::vector<uint8_t> got(static_cast<size_t>(len) + 1, 0xCD);
          simd::SetBackend(b);
          simd::CompareLit<T>(op, col.data(), lit, got.data(), len);
          for (int64_t j = 0; j < len; ++j) {
            ASSERT_EQ(got[j], expected[j])
                << simd::BackendName(b) << " op " << static_cast<int>(op)
                << " lit " << lit << " len " << len << " lane " << j;
          }
        }
      }
    }
  }
}

TEST(SimdCompareLit, Int8) { BackendGuard g; CheckCompareLit<int8_t>(); }
TEST(SimdCompareLit, Int16) { BackendGuard g; CheckCompareLit<int16_t>(); }
TEST(SimdCompareLit, Int32) { BackendGuard g; CheckCompareLit<int32_t>(); }
TEST(SimdCompareLit, Int64) { BackendGuard g; CheckCompareLit<int64_t>(); }

template <typename T>
void CheckCompareCol() {
  std::mt19937_64 rng(43);
  for (int64_t len : kLens) {
    std::vector<T> lhs = RandomValues<T>(&rng, len, /*extremes=*/true);
    std::vector<T> rhs = RandomValues<T>(&rng, len, /*extremes=*/false);
    // Force some equal lanes so kEq/kNe see both outcomes.
    for (int64_t j = 0; j < len; j += 3) rhs[j] = lhs[j];
    if (len >= 2) {  // extreme-vs-extreme lanes
      rhs[0] = std::numeric_limits<T>::max();
      rhs[1] = std::numeric_limits<T>::min();
    }
    for (CmpOp op : kOps) {
      std::vector<uint8_t> expected(static_cast<size_t>(len) + 1, 0xAB);
      simd::SetBackend(Backend::kScalar);
      simd::CompareCol<T>(op, lhs.data(), rhs.data(), expected.data(), len);
      for (Backend b : AltBackends()) {
        std::vector<uint8_t> got(static_cast<size_t>(len) + 1, 0xCD);
        simd::SetBackend(b);
        simd::CompareCol<T>(op, lhs.data(), rhs.data(), got.data(), len);
        for (int64_t j = 0; j < len; ++j) {
          ASSERT_EQ(got[j], expected[j])
              << simd::BackendName(b) << " op " << static_cast<int>(op)
              << " len " << len << " lane " << j;
        }
      }
    }
  }
}

TEST(SimdCompareCol, Int8) { BackendGuard g; CheckCompareCol<int8_t>(); }
TEST(SimdCompareCol, Int16) { BackendGuard g; CheckCompareCol<int16_t>(); }
TEST(SimdCompareCol, Int32) { BackendGuard g; CheckCompareCol<int32_t>(); }
TEST(SimdCompareCol, Int64) { BackendGuard g; CheckCompareCol<int64_t>(); }

TEST(SimdByteOps, AndOrNotCountMatchScalar) {
  BackendGuard guard;
  std::mt19937_64 rng(44);
  for (int64_t len : kLens) {
    for (int kind_a = 0; kind_a < 3; ++kind_a) {
      for (int kind_b = 0; kind_b < 3; ++kind_b) {
        std::vector<uint8_t> a = MaskBytes(&rng, len, kind_a);
        std::vector<uint8_t> b = MaskBytes(&rng, len, kind_b);

        simd::SetBackend(Backend::kScalar);
        std::vector<uint8_t> and_ref = a;
        simd::AndBytes(and_ref.data(), b.data(), len);
        std::vector<uint8_t> or_ref = a;
        simd::OrBytes(or_ref.data(), b.data(), len);
        std::vector<uint8_t> not_ref = a;
        simd::NotBytes(not_ref.data(), len);
        int64_t count_ref = simd::CountBytes(a.data(), len);

        for (Backend back : AltBackends()) {
          simd::SetBackend(back);
          std::vector<uint8_t> and_got = a;
          simd::AndBytes(and_got.data(), b.data(), len);
          std::vector<uint8_t> or_got = a;
          simd::OrBytes(or_got.data(), b.data(), len);
          std::vector<uint8_t> not_got = a;
          simd::NotBytes(not_got.data(), len);
          EXPECT_EQ(and_got, and_ref) << simd::BackendName(back) << " len "
                                      << len;
          EXPECT_EQ(or_got, or_ref) << simd::BackendName(back) << " len "
                                    << len;
          EXPECT_EQ(not_got, not_ref) << simd::BackendName(back) << " len "
                                      << len;
          EXPECT_EQ(simd::CountBytes(a.data(), len), count_ref)
              << simd::BackendName(back) << " len " << len;
        }
      }
    }
  }
}

template <typename T>
void CheckMaskedSums() {
  std::mt19937_64 rng(45);
  // Values stay small so the int64 sums cannot overflow; lane-reordering
  // bit-exactness under actual wrap-around is covered by the full-range
  // compare tests plus the associativity of two's-complement addition.
  std::uniform_int_distribution<int64_t> dist(-100, 100);
  for (int64_t len : kLens) {
    std::vector<T> a(static_cast<size_t>(len) + 1);
    std::vector<T> b(static_cast<size_t>(len) + 1);
    for (int64_t j = 0; j < len; ++j) {
      a[j] = static_cast<T>(dist(rng));
      b[j] = static_cast<T>(dist(rng));
    }
    for (int kind = 0; kind < 3; ++kind) {
      std::vector<uint8_t> cmp = MaskBytes(&rng, len, kind);

      simd::SetBackend(Backend::kScalar);
      int64_t sum_ref = simd::SumMasked<T>(a.data(), cmp.data(), len);
      int64_t prod_ref =
          simd::SumProductMasked<T, T>(a.data(), b.data(), cmp.data(), len);
      std::vector<int64_t> tmp_ref(static_cast<size_t>(len) + 1, -7);
      simd::MaskIntoTmp<T>(a.data(), cmp.data(), len, tmp_ref.data());

      for (Backend back : AltBackends()) {
        simd::SetBackend(back);
        int64_t sum_got = simd::SumMasked<T>(a.data(), cmp.data(), len);
        int64_t prod_got =
            simd::SumProductMasked<T, T>(a.data(), b.data(), cmp.data(), len);
        EXPECT_EQ(sum_got, sum_ref)
            << simd::BackendName(back) << " len " << len << " kind " << kind;
        EXPECT_EQ(prod_got, prod_ref)
            << simd::BackendName(back) << " len " << len << " kind " << kind;
        std::vector<int64_t> tmp_got(static_cast<size_t>(len) + 1, -9);
        simd::MaskIntoTmp<T>(a.data(), cmp.data(), len, tmp_got.data());
        for (int64_t j = 0; j < len; ++j) {
          ASSERT_EQ(tmp_got[j], tmp_ref[j])
              << simd::BackendName(back) << " len " << len << " lane " << j;
        }
      }
    }
  }
}

TEST(SimdMaskedSums, Int8) { BackendGuard g; CheckMaskedSums<int8_t>(); }
TEST(SimdMaskedSums, Int16) { BackendGuard g; CheckMaskedSums<int16_t>(); }
TEST(SimdMaskedSums, Int32) { BackendGuard g; CheckMaskedSums<int32_t>(); }
TEST(SimdMaskedSums, Int64) { BackendGuard g; CheckMaskedSums<int64_t>(); }

// Full-range values incl. the width's own min/max in every lane position —
// the narrow-lane vector paths must widen before any intermediate can wrap.
// Lengths/widths are chosen so the final int64 sums stay in range (the sums
// themselves overflowing would be UB in the scalar reference too).
template <typename T>
void CheckMaskedSumExtremes(bool products) {
  std::mt19937_64 rng(51);
  for (int64_t len : kLens) {
    std::vector<T> a = RandomValues<T>(&rng, len, /*extremes=*/true);
    std::vector<T> b = RandomValues<T>(&rng, len, /*extremes=*/true);
    if (len >= 4) {  // min*min and min*max lanes
      b[0] = std::numeric_limits<T>::min();
      b[1] = std::numeric_limits<T>::max();
      a[2] = std::numeric_limits<T>::min();
      a[3] = std::numeric_limits<T>::max();
    }
    for (int kind = 0; kind < 3; ++kind) {
      std::vector<uint8_t> cmp = MaskBytes(&rng, len, kind);
      simd::SetBackend(Backend::kScalar);
      int64_t sum_ref = simd::SumMasked<T>(a.data(), cmp.data(), len);
      int64_t prod_ref =
          products
              ? simd::SumProductMasked<T, T>(a.data(), b.data(), cmp.data(),
                                             len)
              : 0;
      std::vector<int64_t> tmp_ref(static_cast<size_t>(len) + 1, -7);
      simd::MaskIntoTmp<T>(a.data(), cmp.data(), len, tmp_ref.data());
      for (Backend back : AltBackends()) {
        simd::SetBackend(back);
        EXPECT_EQ(simd::SumMasked<T>(a.data(), cmp.data(), len), sum_ref)
            << simd::BackendName(back) << " len " << len << " kind " << kind;
        if (products) {
          EXPECT_EQ((simd::SumProductMasked<T, T>(a.data(), b.data(),
                                                  cmp.data(), len)),
                    prod_ref)
              << simd::BackendName(back) << " len " << len << " kind "
              << kind;
        }
        std::vector<int64_t> tmp_got(static_cast<size_t>(len) + 1, -9);
        simd::MaskIntoTmp<T>(a.data(), cmp.data(), len, tmp_got.data());
        for (int64_t j = 0; j < len; ++j) {
          ASSERT_EQ(tmp_got[j], tmp_ref[j])
              << simd::BackendName(back) << " len " << len << " lane " << j;
        }
      }
    }
  }
}

// int32 products of two extremes ((-2^31)^2 = 2^62) overflow int64 with
// just two masked lanes, so the product leg runs only where a full tile of
// extreme products still fits in the int64 accumulator.
TEST(SimdMaskedSumExtremes, Int8) {
  BackendGuard g;
  CheckMaskedSumExtremes<int8_t>(/*products=*/true);
}
TEST(SimdMaskedSumExtremes, Int16) {
  BackendGuard g;
  CheckMaskedSumExtremes<int16_t>(/*products=*/true);
}
TEST(SimdMaskedSumExtremes, Int32) {
  BackendGuard g;
  CheckMaskedSumExtremes<int32_t>(/*products=*/false);
}

// Lengths past the AVX2 32-bit-partial fold boundaries: the int16 masked
// sum folds its i32 partials into i64 every 2^14 vector iterations (2^18
// lanes) and the int8 product path every 2^15 iterations (2^19 lanes). A
// tile of all-min values maximizes partial magnitude, so an off-by-one in
// the fold bound shows up as a wrapped partial, not a rounding blur.
TEST(SimdMaskedSums, FoldBoundaryInt16Sum) {
  BackendGuard g;
  const int64_t len = (int64_t{1} << 18) + 1027;
  std::vector<int16_t> a(len, std::numeric_limits<int16_t>::min());
  std::vector<uint8_t> cmp(len, 1);
  simd::SetBackend(Backend::kScalar);
  int64_t ref = simd::SumMasked<int16_t>(a.data(), cmp.data(), len);
  EXPECT_EQ(ref, len * int64_t{std::numeric_limits<int16_t>::min()});
  for (Backend back : AltBackends()) {
    simd::SetBackend(back);
    EXPECT_EQ(simd::SumMasked<int16_t>(a.data(), cmp.data(), len), ref)
        << simd::BackendName(back);
  }
}

TEST(SimdMaskedSums, FoldBoundaryInt8Sum) {
  BackendGuard g;
  // The int8 masked sum folds every 2^20 iterations of 32 lanes (2^25
  // lanes); ~34M constant-min lanes cross that bound once.
  const int64_t len = (int64_t{1} << 25) + 1027;
  std::vector<int8_t> a(len, std::numeric_limits<int8_t>::min());
  std::vector<uint8_t> cmp(len, 1);
  simd::SetBackend(Backend::kScalar);
  int64_t ref = simd::SumMasked<int8_t>(a.data(), cmp.data(), len);
  EXPECT_EQ(ref, len * int64_t{-128});
  for (Backend back : AltBackends()) {
    simd::SetBackend(back);
    EXPECT_EQ(simd::SumMasked<int8_t>(a.data(), cmp.data(), len), ref)
        << simd::BackendName(back);
  }
}

TEST(SimdMaskedSums, FoldBoundaryInt8Product) {
  BackendGuard g;
  const int64_t len = (int64_t{1} << 19) + 1027;
  std::vector<int8_t> a(len, std::numeric_limits<int8_t>::min());
  std::vector<int8_t> b(len, std::numeric_limits<int8_t>::min());
  std::vector<uint8_t> cmp(len, 1);
  simd::SetBackend(Backend::kScalar);
  int64_t ref =
      simd::SumProductMasked<int8_t, int8_t>(a.data(), b.data(), cmp.data(),
                                             len);
  EXPECT_EQ(ref, len * int64_t{128 * 128});
  for (Backend back : AltBackends()) {
    simd::SetBackend(back);
    EXPECT_EQ((simd::SumProductMasked<int8_t, int8_t>(a.data(), b.data(),
                                                      cmp.data(), len)),
              ref)
        << simd::BackendName(back);
  }
}

template <typename T>
void CheckCompareLitMaskIntoTmp() {
  std::mt19937_64 rng(46);
  for (int64_t len : kLens) {
    std::vector<T> col = RandomValues<T>(&rng, len, /*extremes=*/true);
    const int64_t lits[] = {len > 0 ? static_cast<int64_t>(col[len / 2]) : 0,
                            0, std::numeric_limits<int64_t>::max()};
    for (CmpOp op : kOps) {
      for (int64_t lit : lits) {
        simd::SetBackend(Backend::kScalar);
        std::vector<int64_t> ref(static_cast<size_t>(len) + 1, -7);
        simd::CompareLitMaskIntoTmp<T>(op, col.data(), lit, len, ref.data());
        for (Backend back : AltBackends()) {
          simd::SetBackend(back);
          std::vector<int64_t> got(static_cast<size_t>(len) + 1, -9);
          simd::CompareLitMaskIntoTmp<T>(op, col.data(), lit, len,
                                         got.data());
          for (int64_t j = 0; j < len; ++j) {
            ASSERT_EQ(got[j], ref[j])
                << simd::BackendName(back) << " op " << static_cast<int>(op)
                << " lit " << lit << " len " << len << " lane " << j;
          }
        }
      }
    }
  }
}

TEST(SimdCompareLitMaskIntoTmp, Int8) {
  BackendGuard g;
  CheckCompareLitMaskIntoTmp<int8_t>();
}
TEST(SimdCompareLitMaskIntoTmp, Int16) {
  BackendGuard g;
  CheckCompareLitMaskIntoTmp<int16_t>();
}
TEST(SimdCompareLitMaskIntoTmp, Int32) {
  BackendGuard g;
  CheckCompareLitMaskIntoTmp<int32_t>();
}
TEST(SimdCompareLitMaskIntoTmp, Int64) {
  BackendGuard g;
  CheckCompareLitMaskIntoTmp<int64_t>();
}

template <typename T>
void CheckMaskKeys() {
  std::mt19937_64 rng(47);
  const int64_t null_key = HashTable::kMaskKey;
  for (int64_t len : kLens) {
    std::vector<T> col = RandomValues<T>(&rng, len, /*extremes=*/true);
    for (int kind = 0; kind < 3; ++kind) {
      std::vector<uint8_t> cmp = MaskBytes(&rng, len, kind);
      simd::SetBackend(Backend::kScalar);
      std::vector<int64_t> ref(static_cast<size_t>(len) + 1, -7);
      simd::MaskKeys<T>(col.data(), cmp.data(), null_key, len, ref.data());
      for (Backend back : AltBackends()) {
        simd::SetBackend(back);
        std::vector<int64_t> got(static_cast<size_t>(len) + 1, -9);
        simd::MaskKeys<T>(col.data(), cmp.data(), null_key, len, got.data());
        for (int64_t j = 0; j < len; ++j) {
          ASSERT_EQ(got[j], ref[j])
              << simd::BackendName(back) << " len " << len << " kind "
              << kind << " lane " << j;
        }
      }
    }
  }
}

TEST(SimdMaskKeys, Int8) { BackendGuard g; CheckMaskKeys<int8_t>(); }
TEST(SimdMaskKeys, Int16) { BackendGuard g; CheckMaskKeys<int16_t>(); }
TEST(SimdMaskKeys, Int32) { BackendGuard g; CheckMaskKeys<int32_t>(); }
TEST(SimdMaskKeys, Int64) { BackendGuard g; CheckMaskKeys<int64_t>(); }

TEST(SimdSelVec, AllBackendsAndFlavorsMatch) {
  BackendGuard guard;
  std::mt19937_64 rng(48);
  // Densities sweep selection-vector pressure; kinds 1/2 are the all-0 and
  // all-1 masks. Every length with len % 8 != 0 exercises the LUT and
  // movemask tails.
  const double densities[] = {0.0, 0.01, 0.33, 0.5, 0.97, 1.0};
  for (int64_t len : kLens) {
    for (double density : densities) {
      std::vector<uint8_t> cmp(static_cast<size_t>(len) + 1, 0);
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      for (int64_t j = 0; j < len; ++j) {
        cmp[j] = coin(rng) < density ? 1 : 0;
      }

      // Reference: the branching construction, backend-independent.
      std::vector<int32_t> ref;
      for (int64_t j = 0; j < len; ++j) {
        if (cmp[j]) ref.push_back(static_cast<int32_t>(j));
      }

      for (Backend back : SupportedBackends()) {
        simd::SetBackend(back);
        for (simd::SelFlavor flavor :
             {simd::SelFlavor::kNoBranch, simd::SelFlavor::kLut}) {
          // Full tile of slack: the AVX2 tier stores 8-wide unconditionally
          // but never writes at or past idx[len].
          std::vector<int32_t> idx(static_cast<size_t>(len) + 8, -1);
          int32_t n = simd::SelVecFromCmp(cmp.data(), len, idx.data(),
                                          flavor);
          ASSERT_EQ(n, static_cast<int32_t>(ref.size()))
              << simd::BackendName(back) << " len " << len << " density "
              << density;
          for (int32_t k = 0; k < n; ++k) {
            ASSERT_EQ(idx[k], ref[k])
                << simd::BackendName(back) << " len " << len << " slot "
                << k;
          }
        }
      }
    }
  }
}

TEST(SimdSelVec, KernelsLutEntryPointHandlesRaggedTails) {
  BackendGuard guard;
  // The kernels.cc wrapper (ROF's LUT flavor) on lengths with len % 8 != 0,
  // under every backend.
  std::mt19937_64 rng(49);
  for (int64_t len : {1, 7, 9, 23, 1017, 1023, 1025}) {
    std::vector<uint8_t> cmp(static_cast<size_t>(len), 0);
    for (int64_t j = 0; j < len; ++j) cmp[j] = rng() & 1;
    std::vector<int32_t> ref;
    for (int64_t j = 0; j < len; ++j) {
      if (cmp[j]) ref.push_back(static_cast<int32_t>(j));
    }
    for (Backend back : SupportedBackends()) {
      simd::SetBackend(back);
      std::vector<int32_t> idx(static_cast<size_t>(len) + 8, -1);
      int32_t n = kernels::SelVecFromCmpLut(cmp.data(), len, idx.data());
      ASSERT_EQ(n, static_cast<int32_t>(ref.size()))
          << simd::BackendName(back) << " len " << len;
      for (int32_t k = 0; k < n; ++k) ASSERT_EQ(idx[k], ref[k]);
    }
  }
}

TEST(SimdDispatch, UnsupportedRequestsClampDown) {
  BackendGuard guard;
  Backend got = simd::SetBackend(Backend::kAvx2);
  if (simd::CpuHasAvx2()) {
    EXPECT_EQ(got, Backend::kAvx2);
  } else {
    EXPECT_EQ(got, Backend::kSwar);
  }
  EXPECT_EQ(simd::ActiveBackend(), got);
  EXPECT_EQ(simd::SetBackend(Backend::kScalar), Backend::kScalar);
  EXPECT_STREQ(simd::BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::BackendName(Backend::kSwar), "swar");
  EXPECT_STREQ(simd::BackendName(Backend::kAvx2), "avx2");
}

// ---- Native-width vs forced-widening differentials ----
//
// SWOLE_WIDEN=1 (kernels::SetWidenMode) routes every narrow-typed kernel
// through the legacy widen-to-int64 path. Both modes must agree bit for
// bit on every primitive, under every backend.

class WidenGuard {
 public:
  WidenGuard() : saved_(kernels::WidenEnabled()) {}
  ~WidenGuard() { kernels::SetWidenMode(saved_); }

 private:
  bool saved_;
};

template <typename T>
void CheckWidenedKernels() {
  std::mt19937_64 rng(52);
  const int64_t null_key = HashTable::kMaskKey;
  for (int64_t len : kLens) {
    std::vector<T> a = RandomValues<T>(&rng, len, /*extremes=*/true);
    std::vector<T> b = RandomValues<T>(&rng, len, /*extremes=*/true);
    std::vector<uint8_t> cmp = MaskBytes(&rng, len, 0);
    // Small values for the sum legs (see CheckMaskedSums).
    std::vector<T> sm_a(static_cast<size_t>(len) + 1);
    std::vector<T> sm_b(static_cast<size_t>(len) + 1);
    std::uniform_int_distribution<int64_t> small(-100, 100);
    for (int64_t j = 0; j < len; ++j) {
      sm_a[j] = static_cast<T>(small(rng));
      sm_b[j] = static_cast<T>(small(rng));
    }
    const int64_t lit =
        len > 0 ? static_cast<int64_t>(a[len / 2])
                : static_cast<int64_t>(std::numeric_limits<T>::max());
    for (Backend back : SupportedBackends()) {
      simd::SetBackend(back);
      for (CmpOp op : kOps) {
        std::vector<uint8_t> cl_ref(static_cast<size_t>(len) + 1, 0xAB);
        std::vector<uint8_t> cc_ref(static_cast<size_t>(len) + 1, 0xAB);
        std::vector<int64_t> ct_ref(static_cast<size_t>(len) + 1, -7);
        kernels::SetWidenMode(false);
        kernels::CompareLit<T>(op, a.data(), lit, cl_ref.data(), len);
        kernels::CompareCol<T>(op, a.data(), b.data(), cc_ref.data(), len);
        kernels::CompareLitMaskIntoTmp<T>(op, a.data(), lit, len,
                                          ct_ref.data());
        kernels::SetWidenMode(true);
        std::vector<uint8_t> cl_got(static_cast<size_t>(len) + 1, 0xCD);
        std::vector<uint8_t> cc_got(static_cast<size_t>(len) + 1, 0xCD);
        std::vector<int64_t> ct_got(static_cast<size_t>(len) + 1, -9);
        kernels::CompareLit<T>(op, a.data(), lit, cl_got.data(), len);
        kernels::CompareCol<T>(op, a.data(), b.data(), cc_got.data(), len);
        kernels::CompareLitMaskIntoTmp<T>(op, a.data(), lit, len,
                                          ct_got.data());
        for (int64_t j = 0; j < len; ++j) {
          ASSERT_EQ(cl_got[j], cl_ref[j])
              << simd::BackendName(back) << " CompareLit op "
              << static_cast<int>(op) << " len " << len << " lane " << j;
          ASSERT_EQ(cc_got[j], cc_ref[j])
              << simd::BackendName(back) << " CompareCol op "
              << static_cast<int>(op) << " len " << len << " lane " << j;
          ASSERT_EQ(ct_got[j], ct_ref[j])
              << simd::BackendName(back) << " CompareLitMaskIntoTmp op "
              << static_cast<int>(op) << " len " << len << " lane " << j;
        }
      }

      kernels::SetWidenMode(false);
      int64_t sum_ref = kernels::SumMasked<T>(sm_a.data(), cmp.data(), len);
      int64_t prod_ref = kernels::SumProductMasked<T, T>(
          sm_a.data(), sm_b.data(), cmp.data(), len);
      std::vector<int64_t> mt_ref(static_cast<size_t>(len) + 1, -7);
      std::vector<int64_t> mk_ref(static_cast<size_t>(len) + 1, -7);
      kernels::MaskIntoTmp<T>(sm_a.data(), cmp.data(), len, mt_ref.data());
      kernels::MaskKeys<T>(a.data(), cmp.data(), null_key, len,
                           mk_ref.data());
      kernels::SetWidenMode(true);
      EXPECT_EQ(kernels::SumMasked<T>(sm_a.data(), cmp.data(), len), sum_ref)
          << simd::BackendName(back) << " len " << len;
      EXPECT_EQ((kernels::SumProductMasked<T, T>(sm_a.data(), sm_b.data(),
                                                 cmp.data(), len)),
                prod_ref)
          << simd::BackendName(back) << " len " << len;
      std::vector<int64_t> mt_got(static_cast<size_t>(len) + 1, -9);
      std::vector<int64_t> mk_got(static_cast<size_t>(len) + 1, -9);
      kernels::MaskIntoTmp<T>(sm_a.data(), cmp.data(), len, mt_got.data());
      kernels::MaskKeys<T>(a.data(), cmp.data(), null_key, len,
                           mk_got.data());
      for (int64_t j = 0; j < len; ++j) {
        ASSERT_EQ(mt_got[j], mt_ref[j])
            << simd::BackendName(back) << " MaskIntoTmp len " << len
            << " lane " << j;
        ASSERT_EQ(mk_got[j], mk_ref[j])
            << simd::BackendName(back) << " MaskKeys len " << len << " lane "
            << j;
      }
      kernels::SetWidenMode(false);
    }
  }
}

TEST(WidenedKernels, Int8) {
  BackendGuard b;
  WidenGuard w;
  CheckWidenedKernels<int8_t>();
}
TEST(WidenedKernels, Int16) {
  BackendGuard b;
  WidenGuard w;
  CheckWidenedKernels<int16_t>();
}
TEST(WidenedKernels, Int32) {
  BackendGuard b;
  WidenGuard w;
  CheckWidenedKernels<int32_t>();
}

// ---- Query-level cross-backend bit-exactness ----
//
// Every strategy engine, under every backend, at 1/2/8 threads, must
// reproduce the reference oracle's results (the oracle itself runs under
// the scalar backend).

class SimdQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 20'001;  // several tiles; not a multiple of 1024
    config.s_small_rows = 100;
    config.s_large_rows = 3'000;
    config.c_cardinalities = {10, 97};
    config.seed = 11;
    data_ = MicroData::Generate(config).release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static void CheckAcrossBackends(const QueryPlan& plan) {
    BackendGuard guard;
    simd::SetBackend(Backend::kScalar);
    ReferenceEngine oracle(data_->catalog);
    Result<QueryResult> expected = oracle.Execute(plan);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    for (Backend back : SupportedBackends()) {
      simd::SetBackend(back);
      for (int threads : {1, 2, 8}) {
        for (StrategyKind kind :
             {StrategyKind::kDataCentric, StrategyKind::kHybrid,
              StrategyKind::kRof, StrategyKind::kSwole}) {
          StrategyOptions options;
          options.tile_size = 1024;
          options.num_threads = threads;
          std::unique_ptr<Strategy> engine =
              MakeStrategy(kind, data_->catalog, options);
          Result<QueryResult> actual = engine->Execute(plan);
          ASSERT_TRUE(actual.ok())
              << engine->name() << ": " << actual.status().ToString();
          EXPECT_EQ(*actual, *expected)
              << engine->name() << " under " << simd::BackendName(back)
              << " at " << threads << " threads diverges on " << plan.name;
        }
      }
    }
  }

  static MicroData* data_;
};

MicroData* SimdQueryTest::data_ = nullptr;

TEST_F(SimdQueryTest, ScalarAggregation) {
  CheckAcrossBackends(MicroQ1(false, 37));
}

TEST_F(SimdQueryTest, GroupByAggregation) {
  CheckAcrossBackends(MicroQ2(data_->c_columns[1], data_->c_actual[1], 45));
}

TEST_F(SimdQueryTest, FkJoin) { CheckAcrossBackends(MicroQ4(true, 60, 40)); }

TEST_F(SimdQueryTest, Groupjoin) {
  CheckAcrossBackends(MicroQ5(false, 50, 100));
}

// The SWOLE_WIDEN=1 escape hatch must reproduce the oracle bit for bit on
// the same strategy × backend × thread-count grid as the native-width runs
// above — together the two suites prove native and widened execution agree.
TEST_F(SimdQueryTest, WidenedScalarAggregation) {
  WidenGuard w;
  kernels::SetWidenMode(true);
  CheckAcrossBackends(MicroQ1(false, 37));
}

TEST_F(SimdQueryTest, WidenedGroupByAggregation) {
  WidenGuard w;
  kernels::SetWidenMode(true);
  CheckAcrossBackends(MicroQ2(data_->c_columns[1], data_->c_actual[1], 45));
}

TEST_F(SimdQueryTest, WidenedGroupjoin) {
  WidenGuard w;
  kernels::SetWidenMode(true);
  CheckAcrossBackends(MicroQ5(false, 50, 100));
}

}  // namespace
}  // namespace swole
