// Unit tests for the shared primitive kernels (exec/kernels.h): prepass
// comparisons, selection-vector construction variants, gathers, masked
// aggregation, access-merging fusions. Each kernel is checked against a
// scalar reimplementation on randomized inputs.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "exec/kernels.h"

namespace swole {
namespace {

using kernels::CmpOp;

class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31);
    col8_.resize(kLen);
    col32_.resize(kLen);
    col64_.resize(kLen);
    other8_.resize(kLen);
    cmp_.resize(kLen);
    for (int64_t j = 0; j < kLen; ++j) {
      col8_[j] = static_cast<int8_t>(rng.UniformInt(-100, 100));
      col32_[j] = static_cast<int32_t>(rng.UniformInt(-100000, 100000));
      col64_[j] = rng.UniformInt(-1000000, 1000000);
      other8_[j] = static_cast<int8_t>(rng.UniformInt(-100, 100));
      cmp_[j] = rng.Bernoulli(0.4) ? 1 : 0;
    }
  }

  static constexpr int64_t kLen = 1000;  // deliberately not 8-aligned
  std::vector<int8_t> col8_;
  std::vector<int32_t> col32_;
  std::vector<int64_t> col64_;
  std::vector<int8_t> other8_;
  std::vector<uint8_t> cmp_;
};

bool ScalarCmp(CmpOp op, int64_t lhs, int64_t rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

TEST_F(KernelsTest, CompareLitAllOpsAllTypes) {
  std::vector<uint8_t> out(kLen);
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe,
                   CmpOp::kEq, CmpOp::kNe}) {
    kernels::CompareLit<int8_t>(op, col8_.data(), 13, out.data(), kLen);
    for (int64_t j = 0; j < kLen; ++j) {
      ASSERT_EQ(out[j], ScalarCmp(op, col8_[j], 13) ? 1 : 0);
    }
    kernels::CompareLit<int32_t>(op, col32_.data(), -500, out.data(), kLen);
    for (int64_t j = 0; j < kLen; ++j) {
      ASSERT_EQ(out[j], ScalarCmp(op, col32_[j], -500) ? 1 : 0);
    }
  }
}

TEST_F(KernelsTest, CompareLitOutOfRangeLiteral) {
  std::vector<uint8_t> out(kLen);
  // int8 column, literal beyond int8 range: widened comparison must hold.
  kernels::CompareLit<int8_t>(CmpOp::kLt, col8_.data(), 1000, out.data(),
                              kLen);
  for (int64_t j = 0; j < kLen; ++j) ASSERT_EQ(out[j], 1);
  kernels::CompareLit<int8_t>(CmpOp::kGt, col8_.data(), 1000, out.data(),
                              kLen);
  for (int64_t j = 0; j < kLen; ++j) ASSERT_EQ(out[j], 0);
}

TEST_F(KernelsTest, CompareColAllOps) {
  std::vector<uint8_t> out(kLen);
  for (CmpOp op : {CmpOp::kLt, CmpOp::kEq, CmpOp::kGe}) {
    kernels::CompareCol<int8_t>(op, col8_.data(), other8_.data(), out.data(),
                                kLen);
    for (int64_t j = 0; j < kLen; ++j) {
      ASSERT_EQ(out[j], ScalarCmp(op, col8_[j], other8_[j]) ? 1 : 0);
    }
  }
}

TEST_F(KernelsTest, ByteLogicOps) {
  std::vector<uint8_t> a = cmp_;
  std::vector<uint8_t> b(kLen);
  for (int64_t j = 0; j < kLen; ++j) b[j] = (j % 3 == 0) ? 1 : 0;
  std::vector<uint8_t> expect_and(kLen);
  std::vector<uint8_t> expect_or(kLen);
  for (int64_t j = 0; j < kLen; ++j) {
    expect_and[j] = cmp_[j] & b[j];
    expect_or[j] = cmp_[j] | b[j];
  }
  kernels::AndBytes(a.data(), b.data(), kLen);
  EXPECT_EQ(a, expect_and);
  a = cmp_;
  kernels::OrBytes(a.data(), b.data(), kLen);
  EXPECT_EQ(a, expect_or);
  a = cmp_;
  kernels::NotBytes(a.data(), kLen);
  for (int64_t j = 0; j < kLen; ++j) ASSERT_EQ(a[j], 1 - cmp_[j]);
}

TEST_F(KernelsTest, SelVecVariantsAgree) {
  std::vector<int32_t> branch(kLen);
  std::vector<int32_t> nobranch(kLen);
  std::vector<int32_t> lut(kLen);
  int32_t n1 = kernels::SelVecFromCmpBranch(cmp_.data(), kLen, branch.data());
  int32_t n2 =
      kernels::SelVecFromCmpNoBranch(cmp_.data(), kLen, nobranch.data());
  int32_t n3 = kernels::SelVecFromCmpLut(cmp_.data(), kLen, lut.data());
  ASSERT_EQ(n1, n2);
  ASSERT_EQ(n1, n3);
  for (int32_t k = 0; k < n1; ++k) {
    ASSERT_EQ(branch[k], nobranch[k]);
    ASSERT_EQ(branch[k], lut[k]);
    ASSERT_EQ(cmp_[branch[k]], 1);
  }
}

TEST_F(KernelsTest, SelVecEdgeCases) {
  std::vector<uint8_t> none(kLen, 0);
  std::vector<uint8_t> all(kLen, 1);
  std::vector<int32_t> idx(kLen);
  EXPECT_EQ(kernels::SelVecFromCmpLut(none.data(), kLen, idx.data()), 0);
  EXPECT_EQ(kernels::SelVecFromCmpLut(all.data(), kLen, idx.data()),
            static_cast<int32_t>(kLen));
  EXPECT_EQ(kernels::SelVecFromCmpBranch(none.data(), 0, idx.data()), 0);
}

TEST_F(KernelsTest, SelectAndRefineBranch) {
  std::vector<int32_t> sel(kLen);
  int32_t n = kernels::SelectLitBranch<int8_t>(CmpOp::kGt, col8_.data(), 0,
                                               sel.data(), kLen);
  for (int32_t k = 0; k < n; ++k) ASSERT_GT(col8_[sel[k]], 0);
  std::vector<int32_t> refined(kLen);
  int32_t m = kernels::RefineLitBranch<int8_t>(CmpOp::kLt, col8_.data(), 50,
                                               sel.data(), n, refined.data());
  for (int32_t k = 0; k < m; ++k) {
    ASSERT_GT(col8_[refined[k]], 0);
    ASSERT_LT(col8_[refined[k]], 50);
  }
  // Count must equal a direct scan.
  int32_t expected = 0;
  for (int64_t j = 0; j < kLen; ++j) {
    if (col8_[j] > 0 && col8_[j] < 50) ++expected;
  }
  EXPECT_EQ(m, expected);
}

TEST_F(KernelsTest, GatherAndWiden) {
  std::vector<int32_t> sel = {0, 5, 5, 999, 42};
  std::vector<int64_t> out(sel.size());
  kernels::Gather<int8_t>(col8_.data(), sel.data(),
                          static_cast<int32_t>(sel.size()), out.data());
  for (size_t k = 0; k < sel.size(); ++k) {
    ASSERT_EQ(out[k], col8_[sel[k]]);
  }
  std::vector<int64_t> widened(kLen);
  kernels::Widen<int32_t>(col32_.data(), kLen, widened.data());
  for (int64_t j = 0; j < kLen; ++j) ASSERT_EQ(widened[j], col32_[j]);
}

TEST_F(KernelsTest, MaskedAggregationMatchesScalar) {
  int64_t expect_sum = 0;
  int64_t expect_prod = 0;
  for (int64_t j = 0; j < kLen; ++j) {
    if (cmp_[j]) {
      expect_sum += col8_[j];
      expect_prod += static_cast<int64_t>(col8_[j]) * other8_[j];
    }
  }
  EXPECT_EQ(kernels::SumMasked<int8_t>(col8_.data(), cmp_.data(), kLen),
            expect_sum);
  int64_t prod = kernels::SumProductMasked<int8_t, int8_t>(
      col8_.data(), other8_.data(), cmp_.data(), kLen);
  EXPECT_EQ(prod, expect_prod);
}

TEST_F(KernelsTest, QuotientKernels) {
  // Build a strictly positive divisor column.
  std::vector<int8_t> divisor(kLen);
  Rng rng(7);
  for (auto& v : divisor) v = static_cast<int8_t>(rng.UniformInt(1, 100));
  int64_t expect = 0;
  for (int64_t j = 0; j < kLen; ++j) {
    if (cmp_[j]) expect += static_cast<int64_t>(col32_[j]) / divisor[j];
  }
  int64_t quotient = kernels::SumQuotientMasked<int32_t, int8_t>(
      col32_.data(), divisor.data(), cmp_.data(), kLen);
  EXPECT_EQ(quotient, expect);
}

TEST_F(KernelsTest, SelAggregationMatchesMasked) {
  std::vector<int32_t> sel(kLen);
  int32_t n = kernels::SelVecFromCmpNoBranch(cmp_.data(), kLen, sel.data());
  EXPECT_EQ(kernels::SumSel<int8_t>(col8_.data(), sel.data(), n),
            kernels::SumMasked<int8_t>(col8_.data(), cmp_.data(), kLen));
  int64_t via_sel = kernels::SumProductSel<int8_t, int8_t>(
      col8_.data(), other8_.data(), sel.data(), n);
  int64_t via_mask = kernels::SumProductMasked<int8_t, int8_t>(
      col8_.data(), other8_.data(), cmp_.data(), kLen);
  EXPECT_EQ(via_sel, via_mask);
  EXPECT_EQ(kernels::CountBytes(cmp_.data(), kLen), n);
}

TEST_F(KernelsTest, AccessMergingFusion) {
  std::vector<int64_t> tmp(kLen);
  kernels::CompareLitMaskIntoTmp<int8_t>(CmpOp::kLt, col8_.data(), 13, kLen,
                                         tmp.data());
  for (int64_t j = 0; j < kLen; ++j) {
    int64_t expect = col8_[j] < 13 ? col8_[j] : 0;
    ASSERT_EQ(tmp[j], expect);
  }
  // Fused tmp * other masked by a residual cmp equals the three-step form.
  int64_t merged = kernels::SumProductMasked<int8_t, int64_t>(
      other8_.data(), tmp.data(), cmp_.data(), kLen);
  int64_t expect = 0;
  for (int64_t j = 0; j < kLen; ++j) {
    if (cmp_[j] && col8_[j] < 13) {
      expect += static_cast<int64_t>(other8_[j]) * col8_[j];
    }
  }
  EXPECT_EQ(merged, expect);
}

TEST_F(KernelsTest, MaskKeys) {
  std::vector<int64_t> keys(kLen);
  kernels::MaskKeys<int32_t>(col32_.data(), cmp_.data(), INT64_MIN + 2, kLen,
                             keys.data());
  for (int64_t j = 0; j < kLen; ++j) {
    ASSERT_EQ(keys[j], cmp_[j] ? col32_[j] : INT64_MIN + 2);
  }
}

TEST_F(KernelsTest, LookupMask) {
  std::vector<int8_t> codes(kLen);
  Rng rng(5);
  for (auto& c : codes) c = static_cast<int8_t>(rng.UniformInt(0, 9));
  uint8_t mask[10] = {1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  std::vector<uint8_t> out(kLen);
  kernels::LookupMask<int8_t>(codes.data(), mask, out.data(), kLen);
  for (int64_t j = 0; j < kLen; ++j) {
    ASSERT_EQ(out[j], mask[codes[j]]);
  }
}

}  // namespace
}  // namespace swole
