// Reference-engine tests on tiny hand-computed tables: every plan feature
// with answers checked by hand (the oracle itself must be trustworthy).

#include <gtest/gtest.h>

#include <memory>

#include "engine/reference_engine.h"
#include "storage/table.h"

namespace swole {
namespace {

std::unique_ptr<Column> IntCol(const std::string& name,
                               std::vector<int64_t> values,
                               PhysicalType physical = PhysicalType::kInt64) {
  auto col = std::make_unique<Column>(name, ColumnType::Int(physical));
  for (int64_t v : values) col->Append(v);
  return col;
}

class ReferenceEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // s: 3 rows; r: 6 rows referencing s.
    auto s = std::make_shared<Table>("s");
    ASSERT_TRUE(s->AddColumn(IntCol("s_pk", {0, 1, 2})).ok());
    ASSERT_TRUE(s->AddColumn(IntCol("s_x", {10, 20, 30})).ok());

    auto r = std::make_shared<Table>("r");
    ASSERT_TRUE(r->AddColumn(IntCol("r_fk", {0, 0, 1, 1, 2, 2})).ok());
    ASSERT_TRUE(r->AddColumn(IntCol("r_a", {1, 2, 3, 4, 5, 6})).ok());
    ASSERT_TRUE(r->AddColumn(IntCol("r_x", {9, 8, 7, 6, 5, 4})).ok());
    ASSERT_TRUE(r->AddColumn(IntCol("r_pk", {0, 1, 2, 3, 4, 5})).ok());
    Result<FkIndex> index =
        FkIndex::Build(r->ColumnRef("r_fk"), s->ColumnRef("s_pk"));
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(r->AddFkIndex("r_fk", std::move(index).value()).ok());

    // t: references r (for reverse dims): rows referencing r_pk.
    auto t = std::make_shared<Table>("t");
    ASSERT_TRUE(t->AddColumn(IntCol("t_fk", {0, 0, 3, 5})).ok());
    ASSERT_TRUE(t->AddColumn(IntCol("t_v", {1, 0, 1, 0})).ok());
    Result<FkIndex> tindex =
        FkIndex::Build(t->ColumnRef("t_fk"), r->ColumnRef("r_pk"));
    ASSERT_TRUE(tindex.ok());
    ASSERT_TRUE(t->AddFkIndex("t_fk", std::move(tindex).value()).ok());

    ASSERT_TRUE(catalog_.AddTable(r).ok());
    ASSERT_TRUE(catalog_.AddTable(s).ok());
    ASSERT_TRUE(catalog_.AddTable(t).ok());
  }

  Catalog catalog_;
};

TEST_F(ReferenceEngineTest, ScalarSumWithFilter) {
  QueryPlan plan;
  plan.name = "t";
  plan.fact_table = "r";
  plan.fact_filter = Gt(Col("r_x"), Lit(6));  // rows 0,1,2
  plan.aggs.emplace_back(AggKind::kSum, Col("r_a"), "s");
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "c");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  EXPECT_EQ(result.scalar[0], 1 + 2 + 3);
  EXPECT_EQ(result.scalar[1], 3);
}

TEST_F(ReferenceEngineTest, MinMaxWithEmptyInput) {
  QueryPlan plan;
  plan.fact_table = "r";
  plan.fact_filter = Gt(Col("r_x"), Lit(100));  // empty
  plan.aggs.emplace_back(AggKind::kMin, Col("r_a"), "mn");
  plan.aggs.emplace_back(AggKind::kMax, Col("r_a"), "mx");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  EXPECT_EQ(result.scalar[0], QueryResult::kMinIdentity);
  EXPECT_EQ(result.scalar[1], QueryResult::kMaxIdentity);
}

TEST_F(ReferenceEngineTest, MinMaxValues) {
  QueryPlan plan;
  plan.fact_table = "r";
  plan.fact_filter = Lt(Col("r_x"), Lit(8));  // rows 2..5, r_a in {3,4,5,6}
  plan.aggs.emplace_back(AggKind::kMin, Col("r_a"), "mn");
  plan.aggs.emplace_back(AggKind::kMax, Col("r_a"), "mx");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  EXPECT_EQ(result.scalar[0], 3);
  EXPECT_EQ(result.scalar[1], 6);
}

TEST_F(ReferenceEngineTest, DimExistenceFiltersFactRows) {
  QueryPlan plan;
  plan.fact_table = "r";
  DimJoin dim;
  dim.hop = {"r_fk", "s", "s_pk"};
  dim.filter = Ge(Col("s_x"), Lit(20));  // s rows 1,2 qualify
  plan.dims.push_back(std::move(dim));
  plan.aggs.emplace_back(AggKind::kSum, Col("r_a"), "s");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  EXPECT_EQ(result.scalar[0], 3 + 4 + 5 + 6);  // r rows with fk 1 or 2
}

TEST_F(ReferenceEngineTest, GroupByWithGroupjoinShape) {
  QueryPlan plan;
  plan.fact_table = "r";
  DimJoin dim;
  dim.hop = {"r_fk", "s", "s_pk"};
  dim.filter = Ne(Col("s_x"), Lit(20));  // exclude key 1
  plan.dims.push_back(std::move(dim));
  plan.group_by = Col("r_fk");
  plan.aggs.emplace_back(AggKind::kSum, Col("r_a"), "s");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  ASSERT_EQ(result.NumGroups(), 2);
  EXPECT_EQ(result.group_keys[0], 0);
  EXPECT_EQ(result.GroupAgg(0, 0), 1 + 2);
  EXPECT_EQ(result.group_keys[1], 2);
  EXPECT_EQ(result.GroupAgg(1, 0), 5 + 6);
}

TEST_F(ReferenceEngineTest, ReverseDimExists) {
  // r row qualifies iff some t row with t_v == 1 references it:
  // t rows 0 (fk 0) and 2 (fk 3) -> r rows 0 and 3.
  QueryPlan plan;
  plan.fact_table = "r";
  ReverseDim rdim;
  rdim.table = "t";
  rdim.fk_column = "t_fk";
  rdim.filter = Eq(Col("t_v"), Lit(1));
  rdim.fact_pk_column = "r_pk";
  plan.reverse_dims.push_back(std::move(rdim));
  plan.aggs.emplace_back(AggKind::kSum, Col("r_a"), "s");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  EXPECT_EQ(result.scalar[0], 1 + 4);
}

TEST_F(ReferenceEngineTest, PathValuesAndEqualities) {
  // Path to s_x; require s_x == 10*(r_fk+1) ... instead use equality of
  // the same path to itself as smoke, then check path values via group.
  QueryPlan plan;
  plan.fact_table = "r";
  ColumnPath path;
  path.alias = "sx";
  path.hops = {{"r_fk", "s", "s_pk"}};
  path.column = "s_x";
  plan.paths.push_back(std::move(path));
  plan.group_by_path = "sx";
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "c");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  ASSERT_EQ(result.NumGroups(), 3);
  EXPECT_EQ(result.group_keys[0], 10);
  EXPECT_EQ(result.GroupAgg(0, 0), 2);
  EXPECT_EQ(result.group_keys[2], 30);
}

TEST_F(ReferenceEngineTest, GroupSeedKeepsZeroGroups) {
  QueryPlan plan;
  plan.fact_table = "r";
  plan.fact_filter = Eq(Col("r_fk"), Lit(2));
  plan.group_by = Col("r_fk");
  plan.group_seed = GroupSeed{"s", "s_pk"};
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "c");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  ASSERT_EQ(result.NumGroups(), 3);  // seeded keys 0,1,2
  EXPECT_EQ(result.GroupAgg(0, 0), 0);
  EXPECT_EQ(result.GroupAgg(1, 0), 0);
  EXPECT_EQ(result.GroupAgg(2, 0), 2);
}

TEST_F(ReferenceEngineTest, HistogramOfCounts) {
  QueryPlan plan;
  plan.fact_table = "r";
  plan.group_by = Col("r_fk");
  plan.group_seed = GroupSeed{"s", "s_pk"};
  plan.histogram_of_agg0 = true;
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "c");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  // Every s key has exactly 2 r rows -> one bucket: count=2, groups=3.
  ASSERT_EQ(result.NumGroups(), 1);
  EXPECT_EQ(result.group_keys[0], 2);
  EXPECT_EQ(result.GroupAgg(0, 0), 3);
}

TEST_F(ReferenceEngineTest, RejectsInvalidPlans) {
  QueryPlan plan;
  plan.fact_table = "missing";
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "c");
  ReferenceEngine engine(catalog_);
  EXPECT_FALSE(engine.Execute(plan).ok());
}

TEST_F(ReferenceEngineTest, EmptyFactTableYieldsIdentities) {
  auto empty = std::make_shared<Table>("empty");
  ASSERT_TRUE(empty->AddColumn(IntCol("v", {})).ok());
  ASSERT_TRUE(catalog_.AddTable(empty).ok());
  QueryPlan plan;
  plan.fact_table = "empty";
  plan.aggs.emplace_back(AggKind::kSum, Col("v"), "s");
  plan.aggs.emplace_back(AggKind::kCount, nullptr, "c");
  ReferenceEngine engine(catalog_);
  QueryResult result = engine.Execute(plan).value();
  EXPECT_EQ(result.scalar[0], 0);
  EXPECT_EQ(result.scalar[1], 0);
}

}  // namespace
}  // namespace swole
