// Unit tests for src/storage: types, columns, dictionary, table, fk index,
// positional bitmaps (plain + compressed).

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/fault_injection.h"
#include "common/query_abort.h"
#include "common/random.h"
#include "storage/bitmap.h"
#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/fk_index.h"
#include "storage/string_column.h"
#include "storage/table.h"
#include "storage/types.h"

namespace swole {
namespace {

TEST(TypesTest, PhysicalSizes) {
  EXPECT_EQ(PhysicalTypeSize(PhysicalType::kInt8), 1);
  EXPECT_EQ(PhysicalTypeSize(PhysicalType::kInt16), 2);
  EXPECT_EQ(PhysicalTypeSize(PhysicalType::kInt32), 4);
  EXPECT_EQ(PhysicalTypeSize(PhysicalType::kInt64), 8);
}

TEST(TypesTest, NarrowestPhysicalType) {
  EXPECT_EQ(NarrowestPhysicalType(0, 100), PhysicalType::kInt8);
  EXPECT_EQ(NarrowestPhysicalType(-128, 127), PhysicalType::kInt8);
  EXPECT_EQ(NarrowestPhysicalType(0, 128), PhysicalType::kInt16);
  EXPECT_EQ(NarrowestPhysicalType(0, 40000), PhysicalType::kInt32);
  EXPECT_EQ(NarrowestPhysicalType(0, int64_t{1} << 40),
            PhysicalType::kInt64);
}

// Exact width boundaries and one past them, both directions — the
// width-specialized kernels trust this classification, so a column
// misclassified by one at an edge would execute at the wrong lane width.
TEST(TypesTest, NarrowestPhysicalTypeBoundaries) {
  // int8 edges: [-128, 127] fits; one past either end promotes.
  EXPECT_EQ(NarrowestPhysicalType(-128, -128), PhysicalType::kInt8);
  EXPECT_EQ(NarrowestPhysicalType(127, 127), PhysicalType::kInt8);
  EXPECT_EQ(NarrowestPhysicalType(-129, 0), PhysicalType::kInt16);
  EXPECT_EQ(NarrowestPhysicalType(-129, 127), PhysicalType::kInt16);
  EXPECT_EQ(NarrowestPhysicalType(-128, 128), PhysicalType::kInt16);

  // int16 edges: [-32768, 32767].
  EXPECT_EQ(NarrowestPhysicalType(-32768, 32767), PhysicalType::kInt16);
  EXPECT_EQ(NarrowestPhysicalType(-32769, 0), PhysicalType::kInt32);
  EXPECT_EQ(NarrowestPhysicalType(0, 32768), PhysicalType::kInt32);

  // int32 edges: [-2^31, 2^31 - 1].
  EXPECT_EQ(NarrowestPhysicalType(-(int64_t{1} << 31), (int64_t{1} << 31) - 1),
            PhysicalType::kInt32);
  EXPECT_EQ(NarrowestPhysicalType(-(int64_t{1} << 31) - 1, 0),
            PhysicalType::kInt64);
  EXPECT_EQ(NarrowestPhysicalType(0, int64_t{1} << 31), PhysicalType::kInt64);

  // int64 extremes classify without overflowing the classifier itself.
  EXPECT_EQ(NarrowestPhysicalType(std::numeric_limits<int64_t>::min(),
                                  std::numeric_limits<int64_t>::max()),
            PhysicalType::kInt64);
}

TEST(TypesTest, DecimalScaleFactor) {
  EXPECT_EQ(DecimalScaleFactor(0), 1);
  EXPECT_EQ(DecimalScaleFactor(2), 100);
  EXPECT_EQ(DecimalScaleFactor(6), 1000000);
}

TEST(TypesTest, DispatchBindsMatchingType) {
  int width = DispatchPhysical(PhysicalType::kInt16, []<typename T>() {
    return static_cast<int>(sizeof(T));
  });
  EXPECT_EQ(width, 2);
}

TEST(ColumnTest, AppendAndRead) {
  Column col("x", ColumnType::Int(PhysicalType::kInt8));
  for (int i = 0; i < 10; ++i) col.Append(i * 3);
  EXPECT_EQ(col.size(), 10);
  EXPECT_EQ(col.ValueAt(4), 12);
  const int8_t* raw = col.Data<int8_t>();
  EXPECT_EQ(raw[9], 27);
  EXPECT_EQ(col.MinValue(), 0);
  EXPECT_EQ(col.MaxValue(), 27);
  EXPECT_EQ(col.ByteSize(), 10);
}

TEST(ColumnTest, AppendN) {
  Column col("x", ColumnType::Int(PhysicalType::kInt32));
  int64_t values[] = {5, -7, 1000000};
  col.AppendN(values, 3);
  EXPECT_EQ(col.size(), 3);
  EXPECT_EQ(col.ValueAt(1), -7);
  EXPECT_EQ(col.ValueAt(2), 1000000);
}

// Append/AppendN at the exact representable edges of every physical width:
// the values must survive the narrow store and widen back identically, and
// the cached min/max stats (which drive NarrowestPhysicalType re-derivation
// and zone pruning) must land exactly on the edges.
TEST(ColumnTest, AppendNRoundTripsWidthEdges) {
  struct Edge {
    PhysicalType type;
    int64_t min;
    int64_t max;
  };
  const Edge edges[] = {
      {PhysicalType::kInt8, -128, 127},
      {PhysicalType::kInt16, -32768, 32767},
      {PhysicalType::kInt32, -(int64_t{1} << 31), (int64_t{1} << 31) - 1},
      {PhysicalType::kInt64, std::numeric_limits<int64_t>::min(),
       std::numeric_limits<int64_t>::max()},
  };
  for (const Edge& e : edges) {
    Column col("x", ColumnType::Int(e.type));
    const int64_t values[] = {e.min, 0, e.max, e.min + 1, e.max - 1};
    col.AppendN(values, 5);
    ASSERT_EQ(col.size(), 5);
    for (int64_t i = 0; i < 5; ++i) {
      EXPECT_EQ(col.ValueAt(i), values[i])
          << PhysicalTypeName(e.type) << " row " << i;
    }
    EXPECT_EQ(col.MinValue(), e.min) << PhysicalTypeName(e.type);
    EXPECT_EQ(col.MaxValue(), e.max) << PhysicalTypeName(e.type);
    EXPECT_EQ(col.ByteSize(), 5 * PhysicalTypeSize(e.type));
  }
}

#ifndef NDEBUG
// One past the width edge is a programming error AppendN's per-element
// range DCHECK catches in debug builds (release narrows silently, which is
// why NarrowestPhysicalType classification must be exact).
TEST(ColumnDeathTest, AppendNRejectsOutOfRangeInDebug) {
  const int64_t above = 128;
  const int64_t below = -129;
  EXPECT_DEATH(
      {
        Column col("x", ColumnType::Int(PhysicalType::kInt8));
        col.AppendN(&above, 1);
      },
      "");
  EXPECT_DEATH(
      {
        Column col("x", ColumnType::Int(PhysicalType::kInt8));
        col.AppendN(&below, 1);
      },
      "");
  EXPECT_DEATH(
      {
        Column col("x", ColumnType::Int(PhysicalType::kInt16));
        const int64_t v = 32768;
        col.AppendN(&v, 1);
      },
      "");
  EXPECT_DEATH(
      {
        Column col("x", ColumnType::Int(PhysicalType::kInt32));
        const int64_t v = int64_t{1} << 31;
        col.AppendN(&v, 1);
      },
      "");
}
#endif

TEST(ColumnTest, StatsInvalidateOnAppend) {
  Column col("x", ColumnType::Int(PhysicalType::kInt64));
  col.Append(5);
  EXPECT_EQ(col.MaxValue(), 5);
  col.Append(99);
  EXPECT_EQ(col.MaxValue(), 99);
}

TEST(DictionaryTest, SortedDenseCodes) {
  Dictionary dict =
      Dictionary::FromValues({"banana", "apple", "cherry", "apple"});
  EXPECT_EQ(dict.size(), 3);
  EXPECT_EQ(dict.Lookup("apple"), 0);
  EXPECT_EQ(dict.Lookup("banana"), 1);
  EXPECT_EQ(dict.Lookup("cherry"), 2);
  EXPECT_EQ(dict.Lookup("durian"), -1);
  EXPECT_EQ(dict.At(1), "banana");
}

TEST(DictionaryTest, LikeMaskAndMatches) {
  Dictionary dict = Dictionary::FromValues(
      {"PROMO ANODIZED", "STANDARD BRUSHED", "PROMO PLATED", "ECONOMY"});
  std::vector<int32_t> matches = dict.MatchLike("PROMO%");
  ASSERT_EQ(matches.size(), 2u);
  std::vector<uint8_t> mask = dict.LikeMask("PROMO%");
  int set = 0;
  for (int32_t code = 0; code < dict.size(); ++code) {
    if (mask[code]) {
      ++set;
      EXPECT_TRUE(dict.At(code).starts_with("PROMO"));
    }
  }
  EXPECT_EQ(set, 2);
}

TEST(ColumnTest, StringViaDictionary) {
  auto dict = std::make_shared<Dictionary>(
      Dictionary::FromValues({"LOW", "HIGH", "MEDIUM"}));
  Column col("prio", ColumnType::String());
  col.set_dictionary(dict);
  col.Append(dict->Lookup("HIGH"));
  col.Append(dict->Lookup("LOW"));
  EXPECT_EQ(col.StringAt(0), "HIGH");
  EXPECT_EQ(col.StringAt(1), "LOW");
}

TEST(DictionaryTest, EmptyStringAndDuplicateInsertionOrder) {
  // Duplicates collapse and codes are assigned in sorted order regardless of
  // insertion order; the empty string is a legal entry and sorts first.
  Dictionary dict = Dictionary::FromValues({"b", "", "a", "b", "", "a", "b"});
  ASSERT_EQ(dict.size(), 3);
  EXPECT_EQ(dict.Lookup(""), 0);
  EXPECT_EQ(dict.Lookup("a"), 1);
  EXPECT_EQ(dict.Lookup("b"), 2);
  EXPECT_EQ(dict.At(0), "");
  // The empty entry matches exactly the all-'%' patterns.
  std::vector<int32_t> empty_only = dict.MatchLike("");
  ASSERT_EQ(empty_only.size(), 1u);
  EXPECT_EQ(empty_only[0], 0);
  EXPECT_EQ(dict.MatchLike("%").size(), 3u);
  std::vector<uint8_t> underscore = dict.LikeMask("_");
  EXPECT_EQ(underscore[0], 0);  // '' has no byte for '_' to consume
  EXPECT_EQ(underscore[1], 1);
  EXPECT_EQ(underscore[2], 1);
}

TEST(DictionaryTest, LargeValuesRoundTrip) {
  // Values past 64KB exercise any accidental uint16 length assumptions.
  const std::string big_x(70'000, 'x');
  std::string big_y = big_x;
  big_y.back() = 'y';  // differs only in the final byte
  Dictionary dict = Dictionary::FromValues({big_y, "short", big_x});
  ASSERT_EQ(dict.size(), 3);
  EXPECT_EQ(dict.At(dict.Lookup(big_x)), big_x);
  EXPECT_EQ(dict.At(dict.Lookup(big_y)), big_y);
  EXPECT_NE(dict.Lookup(big_x), dict.Lookup(big_y));
  // A pattern that forces the matcher to scan the full value.
  std::vector<int32_t> tail = dict.MatchLike("x%y");
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(dict.At(tail[0]), big_y);
}

TEST(DictionaryDeathTest, AtRejectsOutOfRangeCodes) {
  // At() range checks are SWOLE_CHECKs (always on): a code from a foreign
  // dictionary is data corruption, not a recoverable lookup miss.
  Dictionary dict = Dictionary::FromValues({"a", "b"});
  EXPECT_DEATH(dict.At(-1), "");
  EXPECT_DEATH(dict.At(2), "");
}

// Allocation-charge hook used by the StringColumn governance tests: tracks
// the net charged bytes, enforces an optional budget, and routes through the
// fault injector at the site name exactly like QueryContext::TryCharge does.
struct HookLedger {
  int64_t charged = 0;
  int64_t budget = std::numeric_limits<int64_t>::max();
  int refusals = 0;
};

int LedgerHook(void* ctx, int64_t delta, const char* site) {
  auto* ledger = static_cast<HookLedger*>(ctx);
  if (delta > 0) {
    if (FaultInjector::Global().ShouldFail(site) ||
        ledger->charged + delta > ledger->budget) {
      ++ledger->refusals;
      return static_cast<int>(AbortReason::kBudget);
    }
  }
  ledger->charged += delta;
  return 0;
}

TEST(StringColumnTest, EmptyEmbeddedNulAndLargeValuesRoundTrip) {
  StringColumn col;
  const std::string big(70'000, 'q');
  const std::string_view nul_value("a\0b", 3);
  col.Append("");
  col.Append(nul_value);
  col.Append(big);
  col.Append("");
  ASSERT_EQ(col.size(), 4);
  EXPECT_EQ(col.Get(0), "");
  EXPECT_EQ(col.Get(1), nul_value);
  EXPECT_EQ(col.Get(2), big);
  EXPECT_EQ(col.Get(3), "");
  EXPECT_EQ(col.total_bytes(), 3 + 70'000);
  EXPECT_EQ(col.null_count(), 0);
  StringColumn::Stats stats = col.ComputeStats();
  EXPECT_EQ(stats.min_len, 0u);
  EXPECT_EQ(stats.max_len, 70'000u);
  EXPECT_EQ(stats.total_bytes, 70'003);
  EXPECT_DOUBLE_EQ(stats.avg_len, 70'003 / 4.0);
}

TEST(StringColumnTest, NullBitmapBackfillsEarlierRows) {
  StringColumn col;
  col.Append("first");
  col.Append("second");
  EXPECT_EQ(col.null_count(), 0);
  col.AppendNull();
  col.Append("after");
  col.AppendNull();
  ASSERT_EQ(col.size(), 5);
  EXPECT_EQ(col.null_count(), 2);
  // Rows appended before the first null read as non-null, and a null row's
  // payload is the empty view.
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_FALSE(col.IsNull(1));
  EXPECT_TRUE(col.IsNull(2));
  EXPECT_FALSE(col.IsNull(3));
  EXPECT_TRUE(col.IsNull(4));
  EXPECT_EQ(col.Get(2), "");
  EXPECT_EQ(col.Get(3), "after");
}

TEST(StringColumnTest, MemHookChargesFootprintAndMoveTransfersIt) {
  HookLedger ledger;
  {
    StringColumn col;
    for (int i = 0; i < 100; ++i) col.Append("some padding value");
    // Attaching mid-life charges the existing footprint, not just future
    // growth.
    col.SetMemHook(&LedgerHook, &ledger, "string_arena");
    EXPECT_GE(ledger.charged, col.ByteSize());
    const int64_t after_attach = ledger.charged;
    for (int i = 0; i < 5'000; ++i) col.Append("grow the arena further");
    EXPECT_GT(ledger.charged, after_attach);

    // The move transfers the registration without double-charging or
    // releasing; the destination's destructor settles the account.
    const int64_t before_move = ledger.charged;
    StringColumn dst(std::move(col));
    EXPECT_EQ(ledger.charged, before_move);
    ASSERT_EQ(dst.size(), 5'100);
    EXPECT_EQ(dst.Get(0), "some padding value");
    EXPECT_EQ(dst.Get(5'099), "grow the arena further");
  }
  EXPECT_EQ(ledger.charged, 0);
  EXPECT_EQ(ledger.refusals, 0);
}

TEST(StringColumnTest, MemHookRefusalThrowsQueryAbortWithoutAllocating) {
  HookLedger ledger;
  StringColumn col;
  col.Append("pre-existing");
  col.SetMemHook(&LedgerHook, &ledger, "string_arena");
  ledger.budget = ledger.charged;  // freeze: any growth is refused
  const std::string big(1 << 20, 'z');
  try {
    col.Append(big);
    FAIL() << "expected QueryAbort";
  } catch (const QueryAbort& abort) {
    EXPECT_EQ(abort.reason, AbortReason::kBudget);
    EXPECT_STREQ(abort.site, "string_arena");
    EXPECT_GT(abort.requested_bytes, 0);
  }
  EXPECT_EQ(ledger.refusals, 1);
  // The charge is asked before the reserve, so the refused append left the
  // column untouched.
  ASSERT_EQ(col.size(), 1);
  EXPECT_EQ(col.Get(0), "pre-existing");
  // Lifting the budget lets the same append through.
  ledger.budget = std::numeric_limits<int64_t>::max();
  col.Append(big);
  ASSERT_EQ(col.size(), 2);
  EXPECT_EQ(col.Get(1), big);
}

TEST(StringColumnTest, StringArenaFaultSiteInjectsDeterministically) {
  // The "string_arena" fault site (SWOLE_FAULT=string_arena:1.0) fires on
  // the growth charge: with probability 1 every charged append aborts.
  FaultInjector::Global().ClearAll();
  HookLedger ledger;
  StringColumn col;
  col.SetMemHook(&LedgerHook, &ledger, "string_arena");
  FaultInjector::Global().SetFault("string_arena", 1.0);
  EXPECT_THROW(col.Append("boom"), QueryAbort);
  EXPECT_EQ(col.size(), 0);
  EXPECT_GE(FaultInjector::Global().InjectedCount("string_arena"), 1);
  FaultInjector::Global().ClearAll();
  col.Append("boom");
  ASSERT_EQ(col.size(), 1);
  EXPECT_EQ(col.Get(0), "boom");
}

#ifndef NDEBUG
// Get's range checks are debug-only DCHECKs (the kernels index the arena on
// the hot path); out-of-range rows must trap in debug builds.
TEST(StringColumnDeathTest, GetRejectsOutOfRangeInDebug) {
  StringColumn col;
  col.Append("only");
  EXPECT_DEATH(col.Get(-1), "");
  EXPECT_DEATH(col.Get(1), "");
}
#endif

std::unique_ptr<Column> MakeIntColumn(const std::string& name,
                                      std::vector<int64_t> values) {
  auto col =
      std::make_unique<Column>(name, ColumnType::Int(PhysicalType::kInt64));
  for (int64_t v : values) col->Append(v);
  return col;
}

TEST(TableTest, AddAndLookup) {
  Table t("r");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("a", {1, 2, 3})).ok());
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("b", {4, 5, 6})).ok());
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("z"));
  EXPECT_EQ(t.ColumnRef("b").ValueAt(2), 6);
  EXPECT_FALSE(t.GetColumn("z").ok());
  EXPECT_EQ(t.ColumnNames().size(), 2u);
  EXPECT_EQ(t.ByteSize(), 48);
}

TEST(TableTest, RejectsMismatchedLength) {
  Table t("r");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("a", {1, 2, 3})).ok());
  Status st = t.AddColumn(MakeIntColumn("b", {4, 5}));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsDuplicateName) {
  Table t("r");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("a", {1})).ok());
  EXPECT_EQ(t.AddColumn(MakeIntColumn("a", {2})).code(),
            StatusCode::kAlreadyExists);
}

TEST(FkIndexTest, DensePrimaryKeys) {
  auto pk = MakeIntColumn("pk", {100, 101, 102, 103});
  auto fk = MakeIntColumn("fk", {103, 100, 100, 102, 101});
  Result<FkIndex> index = FkIndex::Build(*fk, *pk);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->size(), 5);
  EXPECT_EQ(index->referenced_size(), 4);
  EXPECT_EQ(index->OffsetAt(0), 3u);
  EXPECT_EQ(index->OffsetAt(1), 0u);
  EXPECT_EQ(index->OffsetAt(3), 2u);
}

TEST(FkIndexTest, SparsePrimaryKeys) {
  auto pk = MakeIntColumn("pk", {7, 99, 23});
  auto fk = MakeIntColumn("fk", {23, 7, 99, 99});
  Result<FkIndex> index = FkIndex::Build(*fk, *pk);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->OffsetAt(0), 2u);
  EXPECT_EQ(index->OffsetAt(1), 0u);
  EXPECT_EQ(index->OffsetAt(2), 1u);
  EXPECT_EQ(index->OffsetAt(3), 1u);
}

TEST(FkIndexTest, DetectsIntegrityViolation) {
  auto pk = MakeIntColumn("pk", {0, 1, 2});
  auto fk = MakeIntColumn("fk", {0, 5});
  EXPECT_FALSE(FkIndex::Build(*fk, *pk).ok());
}

TEST(FkIndexTest, DetectsDuplicatePk) {
  auto pk = MakeIntColumn("pk", {3, 9, 3});
  auto fk = MakeIntColumn("fk", {9});
  EXPECT_FALSE(FkIndex::Build(*fk, *pk).ok());
}

TEST(TableTest, FkIndexRegistration) {
  Table s("s");
  ASSERT_TRUE(s.AddColumn(MakeIntColumn("pk", {0, 1, 2})).ok());
  Table r("r");
  ASSERT_TRUE(r.AddColumn(MakeIntColumn("fk", {2, 0, 1, 1})).ok());
  Result<FkIndex> index =
      FkIndex::Build(r.ColumnRef("fk"), s.ColumnRef("pk"));
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(r.AddFkIndex("fk", std::move(index).value()).ok());
  Result<const FkIndex*> fetched = r.GetFkIndex("fk");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->OffsetAt(0), 2u);
  EXPECT_FALSE(r.GetFkIndex("nope").ok());
}

TEST(BitmapTest, SetTestClear) {
  PositionalBitmap bm(200);
  EXPECT_EQ(bm.num_bits(), 200);
  EXPECT_FALSE(bm.Test(63));
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(199));
  EXPECT_FALSE(bm.Test(65));
  EXPECT_EQ(bm.CountSetBits(), 3);
  bm.Clear(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_EQ(bm.CountSetBits(), 2);
}

TEST(BitmapTest, SetToIsUnconditionalStore) {
  PositionalBitmap bm(10);
  bm.SetTo(5, true);
  EXPECT_TRUE(bm.Test(5));
  bm.SetTo(5, false);
  EXPECT_FALSE(bm.Test(5));
}

TEST(BitmapTest, PackBytesMatchesScalar) {
  Rng rng(11);
  constexpr int64_t kBits = 1000;
  std::vector<uint8_t> cmp(kBits);
  for (auto& b : cmp) b = rng.Bernoulli(0.3) ? 1 : 0;

  PositionalBitmap packed(kBits);
  // Pack in tile-sized chunks with a 64-aligned fast path + scalar tail.
  constexpr int64_t kTile = 256;
  for (int64_t start = 0; start < kBits; start += kTile) {
    int64_t len = std::min(kTile, kBits - start);
    packed.PackBytes(start, cmp.data() + start, len);
  }
  for (int64_t i = 0; i < kBits; ++i) {
    EXPECT_EQ(packed.Test(i), cmp[i] != 0) << "bit " << i;
  }
}

TEST(BitmapTest, AndOr) {
  PositionalBitmap a(128);
  PositionalBitmap b(128);
  a.Set(1);
  a.Set(100);
  b.Set(100);
  b.Set(101);
  PositionalBitmap a_and = a;
  // PositionalBitmap is copyable via default copy (vector member).
  a_and.And(b);
  EXPECT_EQ(a_and.CountSetBits(), 1);
  EXPECT_TRUE(a_and.Test(100));
  a.Or(b);
  EXPECT_EQ(a.CountSetBits(), 3);
}

TEST(CompressedBitmapTest, RoundTripMixed) {
  Rng rng(3);
  PositionalBitmap bm(5000);
  for (int64_t i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.5)) bm.Set(i);
  }
  CompressedBitmap cb = CompressedBitmap::Compress(bm);
  EXPECT_EQ(cb.num_bits(), 5000);
  for (int64_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(cb.Test(i), bm.Test(i)) << "bit " << i;
  }
}

TEST(CompressedBitmapTest, ElidesUniformBlocks) {
  // 512-bit blocks: [all ones][all zeros][mixed]
  PositionalBitmap bm(3 * 512);
  for (int64_t i = 0; i < 512; ++i) bm.Set(i);
  bm.Set(1024 + 7);
  CompressedBitmap cb = CompressedBitmap::Compress(bm);
  EXPECT_EQ(cb.num_mixed_blocks(), 1);
  EXPECT_LT(cb.ByteSize(), bm.ByteSize());
  EXPECT_TRUE(cb.Test(0));
  EXPECT_TRUE(cb.Test(511));
  EXPECT_FALSE(cb.Test(512));
  EXPECT_TRUE(cb.Test(1024 + 7));
  EXPECT_FALSE(cb.Test(1024 + 8));
}

TEST(CompressedBitmapTest, PartialFinalBlock) {
  PositionalBitmap bm(100);
  for (int64_t i = 0; i < 100; ++i) bm.Set(i);
  CompressedBitmap cb = CompressedBitmap::Compress(bm);
  for (int64_t i = 0; i < 100; ++i) EXPECT_TRUE(cb.Test(i));
}

}  // namespace
}  // namespace swole
