// Query-lifecycle governance tests: memory budgets, wall-clock deadlines,
// cooperative cancellation, and graceful strategy degradation. Every
// strategy engine (and the JIT kernel path) must turn a breach into a
// structured Status carrying per-operator memory attribution — never a
// crash, never std::terminate — and SWOLE's pullup plans must retry once
// under the memory-lean data-centric strategy, bit-identical to the
// oracle, when only their own structures breach.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "engine/reference_engine.h"
#include "exec/query_context.h"
#include "exec/scheduler.h"
#include "micro/micro.h"
#include "strategies/strategy.h"
#include "strategies/swole.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

using codegen::ExecutionReport;
using codegen::GeneratorOptions;
using codegen::JitOptions;
using codegen::KernelCache;
using exec::QueryContext;
using tpch::TpchConfig;
using tpch::TpchData;

constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kDataCentric, StrategyKind::kHybrid, StrategyKind::kRof,
    StrategyKind::kSwole};

// Every tracked interpreter-side allocation site, plus the JIT kernel
// sites; sweeping them with a 1.0 fault probability exercises the refusal
// path of every structure that charges the tracker.
constexpr const char* kTrackedSites[] = {
    "dim_keyset",     "dim_bitmap",         "reverse_keyset",
    "reverse_bitmap", "disjunctive_ht",     "disjunctive_bitmap",
    "group_table",    "jit_dim_keyset",     "jit_dim_bitmap",
    "jit_groups"};

// Sets an environment variable for the lifetime of the scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

class LifecycleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 20'001;
    config.s_small_rows = 100;
    config.s_large_rows = 2'000;
    config.c_cardinalities = {10, 1'000};
    config.seed = 11;
    micro_ = MicroData::Generate(config).release();

    TpchConfig tpch_config;
    tpch_config.scale_factor = 0.002;
    tpch_config.seed = 31;
    tpch_ = TpchData::Generate(tpch_config).release();
  }
  static void TearDownTestSuite() {
    delete tpch_;
    tpch_ = nullptr;
    delete micro_;
    micro_ = nullptr;
  }

  void SetUp() override { FaultInjector::Global().ClearAll(); }
  void TearDown() override { FaultInjector::Global().ClearAll(); }

  static QueryPlan GroupedPlan() {
    return MicroQ2(micro_->c_columns[1], micro_->c_actual[1], /*sel=*/50);
  }
  static QueryPlan JoinPlan() {
    return MicroQ4(/*large_s=*/false, /*sel1=*/50, /*sel2=*/50);
  }

  static MicroData* micro_;
  static TpchData* tpch_;
};

MicroData* LifecycleTest::micro_ = nullptr;
TpchData* LifecycleTest::tpch_ = nullptr;

// ---- Memory budgets ----

TEST(QueryContextTest, BreachStatusCarriesPerOperatorPeakAttribution) {
  QueryContext::Limits limits;
  limits.mem_limit_bytes = 1'000;
  QueryContext ctx(limits);
  EXPECT_EQ(ctx.TryCharge(600, "dim_bitmap"), AbortReason::kNone);
  EXPECT_EQ(ctx.TryCharge(100, "group_table"), AbortReason::kNone);
  EXPECT_EQ(ctx.TryCharge(-100, "group_table"), AbortReason::kNone);
  AbortReason refused = ctx.TryCharge(900, "group_table");
  EXPECT_EQ(refused, AbortReason::kBudget);
  Status status = ctx.MakeStatus(refused, "group_table", 900);
  EXPECT_EQ(status.code(), StatusCode::kBudgetExceeded);
  const std::string text = status.ToString();
  EXPECT_NE(text.find("per-operator peaks"), std::string::npos) << text;
  EXPECT_NE(text.find("dim_bitmap=600B"), std::string::npos) << text;
  EXPECT_NE(text.find("group_table=100B"), std::string::npos) << text;
  EXPECT_EQ(ctx.peak_bytes(), 700);
  EXPECT_EQ(ctx.consumed_bytes(), 600);
}

TEST_F(LifecycleTest, BudgetBreachReturnsStructuredStatusPerStrategy) {
  const QueryPlan plan = GroupedPlan();
  for (StrategyKind kind : kAllStrategies) {
    StrategyOptions options;
    options.mem_limit_bytes = 64;  // refuses the very first group table
    std::unique_ptr<Strategy> engine =
        MakeStrategy(kind, micro_->catalog, options);
    Result<QueryResult> result = engine->Execute(plan);
    ASSERT_FALSE(result.ok()) << engine->name();
    EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded)
        << engine->name() << ": " << result.status().ToString();
    // The status names the refusing site and the limit (the per-operator
    // peaks section appears once at least one charge succeeded).
    EXPECT_NE(result.status().ToString().find("at site"), std::string::npos)
        << result.status().ToString();
    EXPECT_NE(result.status().ToString().find("limit 64B"),
              std::string::npos)
        << result.status().ToString();
  }
}

TEST_F(LifecycleTest, BudgetStatusNamesTheBreachingSite) {
  StrategyOptions options;
  options.mem_limit_bytes = 64;
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, options);
  Result<QueryResult> result = engine->Execute(GroupedPlan());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("group_table"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(LifecycleTest, BudgetViaEnvironmentVariable) {
  ScopedEnv limit("SWOLE_MEM_LIMIT", "64");
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kHybrid, micro_->catalog, {});
  Result<QueryResult> result = engine->Execute(GroupedPlan());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded);
}

TEST_F(LifecycleTest, MalformedEnvLimitIsIgnored) {
  ScopedEnv limit("SWOLE_MEM_LIMIT", "banana");
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, {});
  Result<QueryResult> result = engine->Execute(GroupedPlan());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(LifecycleTest, GenerousBudgetIsBitIdenticalToUngoverned) {
  const QueryPlan plan = GroupedPlan();
  ReferenceEngine oracle(micro_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok());
  for (StrategyKind kind : kAllStrategies) {
    StrategyOptions options;
    options.mem_limit_bytes = int64_t{1} << 40;  // governed, non-binding
    std::unique_ptr<Strategy> engine =
        MakeStrategy(kind, micro_->catalog, options);
    Result<QueryResult> actual = engine->Execute(plan);
    ASSERT_TRUE(actual.ok())
        << engine->name() << ": " << actual.status().ToString();
    EXPECT_EQ(*actual, *expected) << engine->name();
  }
}

TEST_F(LifecycleTest, MemoryAttributionTracksPerOperatorPeaks) {
  {
    QueryContext ctx;
    StrategyOptions options;
    options.query_ctx = &ctx;
    std::unique_ptr<Strategy> engine =
        MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, options);
    ASSERT_TRUE(engine->Execute(GroupedPlan()).ok());
    EXPECT_GT(ctx.site_peak_bytes("group_table"), 0);
    EXPECT_GT(ctx.peak_bytes(), 0);
    EXPECT_NE(ctx.MemoryReport().find("group_table"), std::string::npos);
  }
  {
    QueryContext ctx;
    StrategyOptions options;
    options.query_ctx = &ctx;
    std::unique_ptr<Strategy> engine =
        MakeStrategy(StrategyKind::kSwole, micro_->catalog, options);
    ASSERT_TRUE(engine->Execute(JoinPlan()).ok());
    EXPECT_GT(ctx.site_peak_bytes("dim_bitmap"), 0) << ctx.MemoryReport();
  }
}

// ---- Deadlines ----

TEST_F(LifecycleTest, ExpiredDeadlineFiresAtFirstCheckpoint) {
  const QueryPlan plan = MicroQ1(/*division=*/false, /*sel=*/50);
  for (StrategyKind kind : kAllStrategies) {
    QueryContext::Limits limits;
    limits.deadline_ms = 1;
    QueryContext ctx(limits);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    StrategyOptions options;
    options.query_ctx = &ctx;
    std::unique_ptr<Strategy> engine =
        MakeStrategy(kind, micro_->catalog, options);
    Result<QueryResult> result = engine->Execute(plan);
    ASSERT_FALSE(result.ok()) << engine->name();
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << engine->name() << ": " << result.status().ToString();
  }
}

TEST_F(LifecycleTest, InjectedDeadlineFireIsDeterministic) {
  // SWOLE_FAULT's deadline_fire site makes CheckLive report an expired
  // deadline without any wall-clock dependence.
  const QueryPlan plan = GroupedPlan();
  for (StrategyKind kind : kAllStrategies) {
    FaultInjector::Global().SetFault("deadline_fire", 1.0);
    QueryContext ctx;
    StrategyOptions options;
    options.query_ctx = &ctx;
    std::unique_ptr<Strategy> engine =
        MakeStrategy(kind, micro_->catalog, options);
    Result<QueryResult> result = engine->Execute(plan);
    ASSERT_FALSE(result.ok()) << engine->name();
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << engine->name() << ": " << result.status().ToString();
    FaultInjector::Global().ClearAll();
  }
}

TEST_F(LifecycleTest, SwoleDoesNotDegradeOnDeadline) {
  FaultInjector::Global().SetFault("deadline_fire", 1.0);
  QueryContext ctx;
  StrategyOptions options;
  options.query_ctx = &ctx;
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(micro_->catalog, options);
  Result<QueryResult> result = engine->Execute(GroupedPlan());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(engine->last_decisions().degraded_to_data_centric);
  EXPECT_EQ(ctx.degradations(), 0);
}

// ---- Cancellation ----

TEST_F(LifecycleTest, PreCancelledContextReturnsCancelled) {
  QueryContext ctx;
  ctx.RequestCancel();
  const QueryPlan plan = GroupedPlan();
  for (StrategyKind kind : kAllStrategies) {
    StrategyOptions options;
    options.query_ctx = &ctx;
    std::unique_ptr<Strategy> engine =
        MakeStrategy(kind, micro_->catalog, options);
    Result<QueryResult> result = engine->Execute(plan);
    ASSERT_FALSE(result.ok()) << engine->name();
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << engine->name() << ": " << result.status().ToString();
  }
  ReferenceEngine reference(micro_->catalog);
  reference.set_query_context(&ctx);
  Result<QueryResult> oracle = reference.Execute(plan);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.status().code(), StatusCode::kCancelled);
}

TEST_F(LifecycleTest, CancellationFromAnotherThreadStopsTheQuery) {
  QueryContext ctx;
  StrategyOptions options;
  options.query_ctx = &ctx;
  options.num_threads = 2;
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kSwole, micro_->catalog, options);
  const QueryPlan plan = GroupedPlan();

  std::thread canceller([&ctx]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ctx.RequestCancel();
  });
  // Keep executing until the cancellation lands; it is sticky, so the loop
  // terminates deterministically once RequestCancel has run.
  Result<QueryResult> result = engine->Execute(plan);
  while (result.ok()) {
    result = engine->Execute(plan);
  }
  canceller.join();
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
}

// ---- Graceful degradation ----

TEST_F(LifecycleTest, SwoleDegradesToDataCentricBitIdentical) {
  // Refuse every positional-bitmap charge: only SWOLE's pullup structures
  // breach, so the data-centric retry (value-keyed hash joins) succeeds
  // and must match the oracle bit-exactly.
  const QueryPlan plan = JoinPlan();
  ReferenceEngine oracle(micro_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok());

  FaultInjector::Global().SetFault("dim_bitmap", 1.0);
  QueryContext ctx;
  StrategyOptions options;
  options.query_ctx = &ctx;
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(micro_->catalog, options);
  Result<QueryResult> result = engine->Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *expected);
  EXPECT_TRUE(engine->last_decisions().degraded_to_data_centric);
  EXPECT_EQ(ctx.degradations(), 1);
  EXPECT_NE(engine->last_decisions().rationale.find("degraded"),
            std::string::npos);
}

TEST_F(LifecycleTest, DegradationRetryThatAlsoBreachesReportsBudget) {
  // A hard limit breaches both the pullup plan and the data-centric
  // retry; the caller still gets a structured budget status.
  QueryContext::Limits limits;
  limits.mem_limit_bytes = 64;
  QueryContext ctx(limits);
  StrategyOptions options;
  options.query_ctx = &ctx;
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(micro_->catalog, options);
  Result<QueryResult> result = engine->Execute(GroupedPlan());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded);
  EXPECT_EQ(ctx.degradations(), 1);
}

// ---- Injected allocation-failure sweep ----

TEST_F(LifecycleTest, AllocationFaultSweepNeverCrashes) {
  // Arm every tracked site in turn and run plans covering all structure
  // kinds (group tables, dim keysets/bitmaps, reverse dims, disjunctive
  // joins, groupjoins) through every strategy at 1/2/8 threads. Every
  // execution must either succeed (site unused, or SWOLE degraded around
  // it) or return a governance status — never crash or abort.
  std::vector<QueryPlan> plans;
  plans.push_back(GroupedPlan());
  plans.push_back(JoinPlan());
  plans.push_back(MicroQ5(/*large_s=*/false, /*sel=*/50,
                          micro_->config.s_small_rows));

  for (const char* site : kTrackedSites) {
    for (const QueryPlan& plan : plans) {
      for (int threads : {1, 2, 8}) {
        for (StrategyKind kind : kAllStrategies) {
          FaultInjector::Global().ClearAll();
          FaultInjector::Global().SetFault(site, 1.0);
          QueryContext ctx;
          StrategyOptions options;
          options.query_ctx = &ctx;
          options.num_threads = threads;
          std::unique_ptr<Strategy> engine =
              MakeStrategy(kind, micro_->catalog, options);
          Result<QueryResult> result = engine->Execute(plan);
          EXPECT_TRUE(result.ok() || result.status().IsGovernance())
              << engine->name() << " site=" << site << " threads=" << threads
              << " plan=" << plan.name << ": " << result.status().ToString();
        }
      }
    }
  }
  FaultInjector::Global().ClearAll();
}

TEST_F(LifecycleTest, AllocationFaultSweepCoversReverseAndDisjunctive) {
  // TPC-H Q4 carries a reverse (EXISTS) dim, Q19 a disjunctive join —
  // the sites the micro plans cannot reach.
  const QueryPlan q4 = tpch::Q4(tpch_->catalog);
  const QueryPlan q19 = tpch::Q19(tpch_->catalog);
  for (const char* site :
       {"reverse_keyset", "reverse_bitmap", "disjunctive_ht",
        "disjunctive_bitmap", "group_table"}) {
    for (const QueryPlan* plan : {&q4, &q19}) {
      for (int threads : {1, 2, 8}) {
        for (StrategyKind kind : kAllStrategies) {
          FaultInjector::Global().ClearAll();
          FaultInjector::Global().SetFault(site, 1.0);
          QueryContext ctx;
          StrategyOptions options;
          options.query_ctx = &ctx;
          options.num_threads = threads;
          std::unique_ptr<Strategy> engine =
              MakeStrategy(kind, tpch_->catalog, options);
          Result<QueryResult> result = engine->Execute(*plan);
          EXPECT_TRUE(result.ok() || result.status().IsGovernance())
              << engine->name() << " site=" << site << " threads=" << threads
              << " plan=" << plan->name << ": "
              << result.status().ToString();
        }
      }
    }
  }
  FaultInjector::Global().ClearAll();
}

// ---- Ungoverned bit-identity across thread counts ----

TEST_F(LifecycleTest, UngovernedResultsBitIdenticalAcrossThreadCounts) {
  const QueryPlan plan = GroupedPlan();
  ReferenceEngine oracle(micro_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok());
  for (StrategyKind kind : kAllStrategies) {
    for (int threads : {1, 2, 8}) {
      StrategyOptions options;
      options.num_threads = threads;
      std::unique_ptr<Strategy> engine =
          MakeStrategy(kind, micro_->catalog, options);
      Result<QueryResult> actual = engine->Execute(plan);
      ASSERT_TRUE(actual.ok()) << engine->name();
      EXPECT_EQ(*actual, *expected)
          << engine->name() << " diverges at " << threads << " threads";
    }
  }
}

// ---- Scheduler exception safety ----

TEST_F(LifecycleTest, WorkerExceptionBecomesStatusNotTerminate) {
  for (int threads : {1, 2, 8}) {
    exec::MorselStats stats = exec::ParallelMorsels(
        threads, /*total_rows=*/100'000, /*morsel_size=*/128,
        [](int, int64_t begin, int64_t) {
          if (begin >= 50'000) throw std::runtime_error("morsel boom");
        });
    ASSERT_FALSE(stats.status.ok()) << "threads=" << threads;
    EXPECT_EQ(stats.status.code(), StatusCode::kInternal);
    EXPECT_NE(stats.status.ToString().find("morsel boom"),
              std::string::npos);
  }
}

TEST_F(LifecycleTest, CancelledContextSkipsMorselBodies) {
  QueryContext ctx;
  ctx.RequestCancel();
  std::atomic<int64_t> bodies{0};
  for (int threads : {1, 2, 8}) {
    exec::MorselStats stats = exec::ParallelMorsels(
        &ctx, threads, /*total_rows=*/100'000, /*morsel_size=*/128,
        [&bodies](int, int64_t, int64_t) { bodies.fetch_add(1); });
    ASSERT_FALSE(stats.status.ok());
    EXPECT_EQ(stats.status.code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(bodies.load(), 0);
}

// ---- JIT kernels under governance ----

TEST_F(LifecycleTest, JitKernelBudgetBreachReturnsStructuredStatus) {
  KernelCache::Global().Clear();
  GeneratorOptions gen;
  gen.strategy = StrategyKind::kSwole;
  auto compiled =
      codegen::GenerateAndCompile(GroupedPlan(), micro_->catalog, gen, {});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  QueryContext::Limits limits;
  limits.mem_limit_bytes = 64;
  QueryContext ctx(limits);
  Result<QueryResult> result =
      (*compiled)->Run(micro_->catalog, /*num_threads=*/1, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded);
  EXPECT_NE(result.status().ToString().find("jit_"), std::string::npos)
      << result.status().ToString();
}

TEST_F(LifecycleTest, JitKernelHonorsCancellation) {
  KernelCache::Global().Clear();
  GeneratorOptions gen;
  gen.strategy = StrategyKind::kSwole;
  auto compiled =
      codegen::GenerateAndCompile(GroupedPlan(), micro_->catalog, gen, {});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  QueryContext ctx;
  ctx.RequestCancel();
  Result<QueryResult> result =
      (*compiled)->Run(micro_->catalog, /*num_threads=*/2, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
}

TEST_F(LifecycleTest, JitKernelGovernedRunMatchesUngoverned) {
  KernelCache::Global().Clear();
  GeneratorOptions gen;
  gen.strategy = StrategyKind::kSwole;
  auto compiled =
      codegen::GenerateAndCompile(GroupedPlan(), micro_->catalog, gen, {});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  Result<QueryResult> ungoverned = (*compiled)->Run(micro_->catalog, 2);
  ASSERT_TRUE(ungoverned.ok()) << ungoverned.status().ToString();

  QueryContext ctx;  // governed, no limits — hooks active, nothing binds
  Result<QueryResult> governed = (*compiled)->Run(micro_->catalog, 2, &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_EQ(*governed, *ungoverned);
  EXPECT_GT(ctx.site_peak_bytes("jit_groups"), 0) << ctx.MemoryReport();
}

TEST_F(LifecycleTest, JitBudgetBreachDegradesToInterpretedDataCentric) {
  KernelCache::Global().Clear();
  // A huge (non-binding) env limit arms governance; the fault site refuses
  // only the generated kernel's group table, so the interpreted
  // data-centric retry under the same context succeeds.
  ScopedEnv limit("SWOLE_MEM_LIMIT", "1099511627776");
  FaultInjector::Global().SetFault("jit_groups", 1.0);

  const QueryPlan plan = GroupedPlan();
  ReferenceEngine oracle(micro_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok());

  GeneratorOptions gen;
  gen.strategy = StrategyKind::kSwole;
  ExecutionReport report;
  Result<QueryResult> result = codegen::ExecuteWithFallback(
      plan, micro_->catalog, gen, {}, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *expected);
  EXPECT_TRUE(report.used_fallback);
  EXPECT_FALSE(report.fallback_engine.empty());
  EXPECT_NE(report.fallback_reason.find("BudgetExceeded"),
            std::string::npos)
      << report.fallback_reason;
}

TEST_F(LifecycleTest, JitCancellationDoesNotFallBackToInterpreter) {
  KernelCache::Global().Clear();
  ScopedEnv limit("SWOLE_MEM_LIMIT", "1099511627776");
  FaultInjector::Global().SetFault("deadline_fire", 1.0);

  GeneratorOptions gen;
  gen.strategy = StrategyKind::kSwole;
  ExecutionReport report;
  Result<QueryResult> result = codegen::ExecuteWithFallback(
      GroupedPlan(), micro_->catalog, gen, {}, &report);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_FALSE(report.used_fallback);
}

}  // namespace
}  // namespace swole
