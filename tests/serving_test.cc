// Concurrent multi-query serving (DESIGN.md §11): many driver threads
// share one process-wide morsel scheduler and admission controller.
//
//   * results stay bit-identical to sequential execution at every worker
//     count while queries from different clients overlap;
//   * cancelling or deadline-aborting one query from another thread never
//     disturbs concurrently running queries;
//   * overload is shed with structured Status codes (kAdmissionRejected /
//     kQueueTimeout) — deterministically via the admission_reject,
//     queue_timeout, and pool_exhausted fault sites — and the server
//     recovers fully once load drains;
//   * per-tenant caps shed only the capped tenant;
//   * the global memory pool arbitrates concurrent queries' budgets.
//
// The whole file must be TSan-clean: it runs under the serving-tsan preset.

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "engine/reference_engine.h"
#include "exec/admission.h"
#include "exec/query_context.h"
#include "exec/scheduler.h"
#include "micro/micro.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/table.h"
#include "strategies/strategy.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kDataCentric, StrategyKind::kHybrid, StrategyKind::kRof,
    StrategyKind::kSwole};

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One-tile morsels (1024 rows): the 20k-row micro plans split into ~20
    // morsels instead of one, so these tests genuinely multiplex the shared
    // pool — at the default 64-tile morsel size every plan here would be a
    // single morsel and run inline on its driver thread.
    setenv("SWOLE_MORSEL_TILES", "1", /*overwrite=*/1);

    MicroConfig config;
    config.r_rows = 20'000;
    config.s_small_rows = 50;
    config.s_large_rows = 500;
    config.c_cardinalities = {10, 200};
    config.seed = 99;
    micro_ = MicroData::Generate(config).release();

    tpch::TpchConfig tpch_config;
    tpch_config.scale_factor = 0.002;
    tpch_config.seed = 99;
    tpch_ = tpch::TpchData::Generate(tpch_config).release();
  }
  static void TearDownTestSuite() {
    unsetenv("SWOLE_MORSEL_TILES");
    delete micro_;
    micro_ = nullptr;
    delete tpch_;
    tpch_ = nullptr;
  }

  void SetUp() override { ResetServingState(); }
  void TearDown() override { ResetServingState(); }

  // Admission config and fault sites are process-global; every test starts
  // and ends with both disabled so tests compose in one binary.
  static void ResetServingState() {
    FaultInjector::Global().ClearAll();
    exec::AdmissionController::ConfigureGlobal(exec::AdmissionConfig{});
  }

  static MicroData* micro_;
  static tpch::TpchData* tpch_;
};

MicroData* ServingTest::micro_ = nullptr;
tpch::TpchData* ServingTest::tpch_ = nullptr;

// Mixed (plan, strategy) workload with sequential baseline results.
// QueryPlan is move-only, so items index into the owning plan vector.
struct MixedWorkload {
  struct Item {
    size_t plan_index;
    StrategyKind kind;
    QueryResult baseline;
  };
  std::vector<QueryPlan> plans;
  std::vector<Item> items;

  const QueryPlan& plan_of(const Item& item) const {
    return plans[item.plan_index];
  }
};

MixedWorkload BuildMixedWorkload(const MicroData& micro) {
  MixedWorkload workload;
  workload.plans.push_back(MicroQ1(false, 37));
  workload.plans.push_back(
      MicroQ2(micro.c_columns[1], micro.c_actual[1], 45));
  workload.plans.push_back(MicroQ4(true, 60, 40));
  for (size_t p = 0; p < workload.plans.size(); ++p) {
    for (StrategyKind kind : kAllStrategies) {
      MixedWorkload::Item item;
      item.plan_index = p;
      item.kind = kind;
      StrategyOptions options;
      options.num_threads = 1;
      item.baseline = MakeStrategy(kind, micro.catalog, options)
                          ->Execute(workload.plans[p])
                          .value();
      workload.items.push_back(std::move(item));
    }
  }
  return workload;
}

// Runs the mixed workload from `num_clients` concurrent driver threads at
// each worker count and checks every result against its sequential
// baseline. One engine instance per execution (engines are cheap; the
// worker pool and admission control are process-wide regardless).
void RunConcurrentMixedWorkload(const MicroData& micro, int num_clients) {
  const MixedWorkload workload = BuildMixedWorkload(micro);
  for (int workers : {1, 2, 8}) {
    std::vector<std::thread> clients;
    std::atomic<int> mismatches{0};
    std::vector<std::string> errors(num_clients);
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        // Clients start at staggered offsets so different strategies and
        // plan shapes overlap in the pool at any instant.
        for (size_t i = 0; i < workload.items.size(); ++i) {
          const MixedWorkload::Item& item =
              workload.items[(i + c) % workload.items.size()];
          const QueryPlan& plan = workload.plan_of(item);
          StrategyOptions options;
          options.num_threads = workers;
          Result<QueryResult> result =
              MakeStrategy(item.kind, micro.catalog, options)->Execute(plan);
          if (!result.ok() || !(*result == item.baseline)) {
            mismatches.fetch_add(1);
            if (errors[c].empty()) {
              errors[c] = plan.name + std::string(" ") +
                          StrategyKindName(item.kind) +
                          (result.ok() ? " result mismatch"
                                       : " " + result.status().ToString());
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (const std::string& err : errors) {
      EXPECT_TRUE(err.empty()) << "workers=" << workers << ": " << err;
    }
    ASSERT_EQ(mismatches.load(), 0) << "workers=" << workers;
  }
}

TEST_F(ServingTest, ConcurrentMixedQueriesBitIdenticalToSequential) {
  RunConcurrentMixedWorkload(*micro_, 4);
}

TEST_F(ServingTest, ConcurrentQueriesUnderAdmissionCapStillBitIdentical) {
  // With the pool capped at 2 running queries, the 4 clients queue at the
  // door (bounded wait, generous timeout) — admission must delay queries,
  // never corrupt them.
  exec::AdmissionConfig config;
  config.max_concurrent_queries = 2;
  config.admission_timeout_ms = 60'000;
  exec::AdmissionController::ConfigureGlobal(config);
  RunConcurrentMixedWorkload(*micro_, 4);
  EXPECT_EQ(exec::AdmissionController::Global().running(), 0);
  EXPECT_EQ(exec::AdmissionController::Global().waiting(), 0);
}

TEST_F(ServingTest, TpchQueriesConcurrentAcrossCatalogs) {
  // Two clients on TPC-H plans, two on micro plans: concurrent queries
  // over different catalogs share the pool without cross-talk.
  std::vector<QueryPlan> tpch_plans = tpch::AllQueries(tpch_->catalog);
  tpch_plans.resize(3);
  std::vector<QueryResult> tpch_baselines;
  for (const QueryPlan& plan : tpch_plans) {
    StrategyOptions options;
    options.num_threads = 1;
    tpch_baselines.push_back(MakeStrategy(StrategyKind::kSwole,
                                          tpch_->catalog, options)
                                 ->Execute(plan)
                                 .value());
  }
  const MixedWorkload micro_workload = BuildMixedWorkload(*micro_);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < tpch_plans.size(); ++i) {
        StrategyOptions options;
        options.num_threads = 8;
        Result<QueryResult> result =
            MakeStrategy(StrategyKind::kSwole, tpch_->catalog, options)
                ->Execute(tpch_plans[i]);
        if (!result.ok() || !(*result == tpch_baselines[i])) {
          failures.fetch_add(1);
        }
      }
    });
    clients.emplace_back([&] {
      for (const MixedWorkload::Item& item : micro_workload.items) {
        StrategyOptions options;
        options.num_threads = 8;
        Result<QueryResult> result =
            MakeStrategy(item.kind, micro_->catalog, options)
                ->Execute(micro_workload.plan_of(item));
        if (!result.ok() || !(*result == item.baseline)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServingTest, CrossThreadCancelLeavesOtherQueriesUntouched) {
  QueryPlan plan = MicroQ1(false, 37);
  StrategyOptions baseline_options;
  baseline_options.num_threads = 1;
  QueryResult baseline = MakeStrategy(StrategyKind::kSwole, micro_->catalog,
                                      baseline_options)
                             ->Execute(plan)
                             .value();

  exec::QueryContext ctx;
  std::atomic<bool> victim_started{false};
  std::atomic<bool> saw_cancelled{false};

  // Victim: re-executes under its context until the cancel lands (sticky:
  // once RequestCancel is observed, every subsequent claim aborts).
  std::thread victim([&] {
    StrategyOptions options;
    options.num_threads = 8;
    options.query_ctx = &ctx;
    for (int i = 0; i < 1000; ++i) {
      victim_started.store(true, std::memory_order_release);
      Result<QueryResult> result =
          MakeStrategy(StrategyKind::kSwole, micro_->catalog, options)
              ->Execute(plan);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
            << result.status().ToString();
        saw_cancelled.store(true, std::memory_order_release);
        return;
      }
    }
  });

  // Bystanders: keep executing ungoverned queries throughout; every one
  // must succeed bit-identically while the victim is being killed.
  std::atomic<int> bystander_failures{0};
  std::vector<std::thread> bystanders;
  for (int c = 0; c < 2; ++c) {
    bystanders.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        StrategyOptions options;
        options.num_threads = 8;
        Result<QueryResult> result =
            MakeStrategy(StrategyKind::kSwole, micro_->catalog, options)
                ->Execute(plan);
        if (!result.ok() || !(*result == baseline)) {
          bystander_failures.fetch_add(1);
        }
      }
    });
  }

  while (!victim_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  ctx.RequestCancel();  // cross-thread: the victim is mid-loop

  victim.join();
  for (std::thread& t : bystanders) t.join();
  EXPECT_TRUE(saw_cancelled.load());
  EXPECT_EQ(bystander_failures.load(), 0);
}

TEST_F(ServingTest, DeadlineAbortsOneQueryWhileOthersProceed) {
  QueryPlan plan = MicroQ1(false, 37);
  StrategyOptions baseline_options;
  baseline_options.num_threads = 1;
  QueryResult baseline = MakeStrategy(StrategyKind::kSwole, micro_->catalog,
                                      baseline_options)
                             ->Execute(plan)
                             .value();

  // deadline_fire makes every governed CheckLive report an expired
  // deadline; the bystanders run ungoverned (no context), so only the
  // victim aborts.
  FaultInjector::Global().SetFault("deadline_fire", 1.0);

  std::atomic<int> bystander_failures{0};
  std::vector<std::thread> bystanders;
  for (int c = 0; c < 2; ++c) {
    bystanders.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        StrategyOptions options;
        options.num_threads = 8;
        Result<QueryResult> result =
            MakeStrategy(StrategyKind::kSwole, micro_->catalog, options)
                ->Execute(plan);
        if (!result.ok() || !(*result == baseline)) {
          bystander_failures.fetch_add(1);
        }
      }
    });
  }

  exec::QueryContext::Limits limits;
  limits.deadline_ms = 60'000;  // real deadline far away; the fault fires
  exec::QueryContext ctx(limits);
  StrategyOptions governed;
  governed.num_threads = 8;
  governed.query_ctx = &ctx;
  Result<QueryResult> result =
      MakeStrategy(StrategyKind::kSwole, micro_->catalog, governed)
          ->Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();

  for (std::thread& t : bystanders) t.join();
  EXPECT_EQ(bystander_failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Admission control: caps, queueing, structured shedding, recovery.
// ---------------------------------------------------------------------------

TEST_F(ServingTest, AdmitRejectsWhenSaturatedAndRecovers) {
  exec::AdmissionConfig config;
  config.max_concurrent_queries = 1;
  config.max_queued_queries = 0;  // no queue: reject immediately when full
  exec::AdmissionController controller(config);

  exec::AdmissionTicket first;
  ASSERT_TRUE(controller.Admit("", &first).ok());
  EXPECT_EQ(controller.running(), 1);

  exec::AdmissionTicket second;
  Status rejected = controller.Admit("", &second);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kAdmissionRejected);
  EXPECT_TRUE(rejected.IsAdmission());
  EXPECT_FALSE(rejected.IsGovernance());  // fallback chains must not retry

  // Full recovery: releasing the slot admits the next arrival.
  first.Release();
  EXPECT_EQ(controller.running(), 0);
  ASSERT_TRUE(controller.Admit("", &second).ok());
  second.Release();
  EXPECT_EQ(controller.running(), 0);
}

TEST_F(ServingTest, QueuedAdmissionTimesOutWithStructuredStatus) {
  // A held slot that never frees: the bounded wait must expire with the
  // structured kQueueTimeout, not block forever.
  exec::AdmissionConfig config;
  config.max_concurrent_queries = 1;
  config.max_queued_queries = 4;
  config.admission_timeout_ms = 50;
  exec::AdmissionController starved(config);
  exec::AdmissionTicket holder;
  ASSERT_TRUE(starved.Admit("", &holder).ok());
  exec::AdmissionTicket waiter;
  Status timed_out = starved.Admit("", &waiter);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), StatusCode::kQueueTimeout);
  EXPECT_TRUE(timed_out.IsAdmission());
  EXPECT_EQ(starved.waiting(), 0);  // the waiter left the queue

  // A slot freeing while an arrival waits (generous timeout): admitted.
  config.admission_timeout_ms = 60'000;
  exec::AdmissionController draining(config);
  exec::AdmissionTicket busy;
  ASSERT_TRUE(draining.Admit("", &busy).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    busy.Release();
  });
  exec::AdmissionTicket late;
  Status admitted = draining.Admit("", &late);
  releaser.join();
  EXPECT_TRUE(admitted.ok()) << admitted.ToString();
  late.Release();
  EXPECT_EQ(draining.running(), 0);
}

TEST_F(ServingTest, QueueWaitIsStampedOntoTheQueryTrace) {
  // A query that waited for an admission slot records how long on its
  // trace root (admission.queued / admission.wait_us), so queueing shows
  // up in per-query observability, not just the aggregate registry.
  exec::AdmissionConfig config;
  config.max_concurrent_queries = 1;
  config.admission_timeout_ms = 60'000;
  exec::AdmissionController::ConfigureGlobal(config);
  exec::AdmissionTicket busy;
  ASSERT_TRUE(exec::AdmissionController::Global().Admit("", &busy).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    busy.Release();
  });

  QueryPlan plan = MicroQ1(false, 37);
  obs::QueryTrace trace;
  StrategyOptions options;
  options.trace = &trace;
  Result<QueryResult> result =
      MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, options)
          ->Execute(plan);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("admission.queued"), std::string::npos) << text;
  EXPECT_NE(text.find("admission.wait_us"), std::string::npos) << text;

  // An uncontended query stamps nothing: the attributes mean "queued".
  exec::AdmissionController::ConfigureGlobal(exec::AdmissionConfig{});
  obs::QueryTrace untouched;
  options.trace = &untouched;
  ASSERT_TRUE(MakeStrategy(StrategyKind::kDataCentric, micro_->catalog,
                           options)
                  ->Execute(plan)
                  .ok());
  EXPECT_EQ(untouched.ToText().find("admission.queued"), std::string::npos);
}

TEST_F(ServingTest, TenantCapShedsOnlyThatTenant) {
  exec::AdmissionConfig config;
  config.max_queries_per_tenant = 1;
  exec::AdmissionController controller(config);

  exec::AdmissionTicket a1, a2, b1;
  ASSERT_TRUE(controller.Admit("tenant-a", &a1).ok());
  Status capped = controller.Admit("tenant-a", &a2);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.code(), StatusCode::kAdmissionRejected);
  // Another tenant is unaffected by tenant-a's cap.
  EXPECT_TRUE(controller.Admit("tenant-b", &b1).ok());
  // Releasing tenant-a's query restores its headroom.
  a1.Release();
  EXPECT_TRUE(controller.Admit("tenant-a", &a2).ok());
}

TEST_F(ServingTest, FaultSitesForceEveryShedPathThroughEngines) {
  QueryPlan plan = MicroQ1(false, 37);
  StrategyOptions options;
  options.num_threads = 2;

  obs::Counter& rejected =
      obs::MetricsRegistry::Global().GetCounter("admission.rejected");
  obs::Counter& timeouts =
      obs::MetricsRegistry::Global().GetCounter("admission.timeouts");

  // admission_reject: the engine sheds before any work, structured.
  FaultInjector::Global().SetFault("admission_reject", 1.0);
  int64_t rejected_before = rejected.value();
  for (StrategyKind kind : kAllStrategies) {
    Result<QueryResult> result =
        MakeStrategy(kind, micro_->catalog, options)->Execute(plan);
    ASSERT_FALSE(result.ok()) << StrategyKindName(kind);
    EXPECT_EQ(result.status().code(), StatusCode::kAdmissionRejected)
        << StrategyKindName(kind);
  }
  EXPECT_GE(rejected.value(), rejected_before + 4);
  FaultInjector::Global().ClearAll();

  // queue_timeout: same, with the bounded-wait outcome.
  FaultInjector::Global().SetFault("queue_timeout", 1.0);
  int64_t timeouts_before = timeouts.value();
  Result<QueryResult> timed_out =
      MakeStrategy(StrategyKind::kSwole, micro_->catalog, options)
          ->Execute(plan);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kQueueTimeout);
  EXPECT_GE(timeouts.value(), timeouts_before + 1);
  FaultInjector::Global().ClearAll();

  // The reference oracle sheds through the same path.
  FaultInjector::Global().SetFault("admission_reject", 1.0);
  ReferenceEngine reference(micro_->catalog);
  Result<QueryResult> oracle = reference.Execute(plan);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.status().code(), StatusCode::kAdmissionRejected);
  FaultInjector::Global().ClearAll();

  // Full recovery: with the faults cleared, the same engines serve again.
  for (StrategyKind kind : kAllStrategies) {
    Result<QueryResult> result =
        MakeStrategy(kind, micro_->catalog, options)->Execute(plan);
    EXPECT_TRUE(result.ok()) << StrategyKindName(kind) << " "
                             << result.status().ToString();
  }
  EXPECT_EQ(exec::AdmissionController::Global().running(), 0);
}

TEST_F(ServingTest, PoolExhaustedFaultSurfacesAsBudgetBreach) {
  // A configured global pool makes every execution governed; the
  // pool_exhausted site then refuses the first tracked growth, which must
  // surface as the same structured budget breach a real overcommit causes.
  exec::AdmissionConfig config;
  config.global_mem_limit_bytes = int64_t{1} << 30;
  exec::AdmissionController::ConfigureGlobal(config);
  FaultInjector::Global().SetFault("pool_exhausted", 1.0);

  QueryPlan plan = MicroQ2(micro_->c_columns[1], micro_->c_actual[1], 45);
  StrategyOptions options;
  options.num_threads = 2;
  // Data-centric has no SWOLE degradation retry: the breach surfaces.
  Result<QueryResult> result =
      MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, options)
          ->Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded)
      << result.status().ToString();

  // Recovery: clearing the fault restores service under the same pool.
  FaultInjector::Global().ClearAll();
  Result<QueryResult> again =
      MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, options)
          ->Execute(plan);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
  // Everything the query reserved was refunded at detach.
  EXPECT_EQ(
      exec::AdmissionController::Global().memory_pool()->reserved_bytes(), 0);
}

TEST_F(ServingTest, GlobalPoolArbitratesConcurrentBudgets) {
  exec::GlobalMemoryPool pool(1000);

  auto ctx1 = std::make_unique<exec::QueryContext>();
  ctx1->AttachGlobalPool(&pool);
  auto ctx2 = std::make_unique<exec::QueryContext>();
  ctx2->AttachGlobalPool(&pool);

  EXPECT_EQ(ctx1->TryCharge(600, "group_table"), AbortReason::kNone);
  EXPECT_EQ(pool.reserved_bytes(), 600);
  // The second query's growth would overcommit the pool: it is refused as
  // a budget breach attributed to the requesting site, not a crash.
  EXPECT_EQ(ctx2->TryCharge(600, "group_table"), AbortReason::kBudget);
  EXPECT_EQ(pool.reserved_bytes(), 600);
  EXPECT_EQ(ctx2->consumed_bytes(), 0);  // the local charge was rolled back

  // Query 1 finishing refunds its reservation; query 2 can now grow.
  ctx1.reset();
  EXPECT_EQ(pool.reserved_bytes(), 0);
  EXPECT_EQ(ctx2->TryCharge(600, "group_table"), AbortReason::kNone);
  // Releases mirror back to the pool too.
  EXPECT_EQ(ctx2->TryCharge(-600, "group_table"), AbortReason::kNone);
  EXPECT_EQ(pool.reserved_bytes(), 0);
}

TEST_F(ServingTest, ConcurrentSpillingQueriesStayIsolatedAndBitIdentical) {
  // Four clients, one per strategy, all running the same group-by under a
  // budget tight enough that every one of them spills — concurrently,
  // through the shared scheduler. Spill state is per-query: results must
  // match the unconstrained sequential baseline bit-for-bit, and every
  // query's scratch directory must be gone when it finishes.
  std::string spill_base = "/tmp/swole_serving_spill_XXXXXX";
  ASSERT_NE(::mkdtemp(spill_base.data()), nullptr);
  setenv("SWOLE_SPILL_DIR", spill_base.c_str(), /*overwrite=*/1);

  QueryPlan plan = MicroQ2(micro_->c_columns[1], micro_->c_actual[1], 45);
  std::vector<QueryResult> baselines;
  for (StrategyKind kind : kAllStrategies) {
    StrategyOptions options;
    options.num_threads = 1;
    baselines.push_back(
        MakeStrategy(kind, micro_->catalog, options)->Execute(plan).value());
  }

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::string> errors(kClients);
  std::vector<int64_t> spills(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Tight enough that the per-worker soft quota (limit / 2*threads)
      // undercuts the worker tables' steady size, so every worker spills
      // proactively after each batch — yet loose enough that two workers
      // at their transient batch peak (~8KB each at a 64-row tile) always
      // fit together. Spilling is then deterministic, not a race on
      // sibling workers releasing the budget.
      exec::QueryContext ctx(
          exec::QueryContext::Limits{/*mem_limit_bytes=*/24'576});
      StrategyOptions options;
      options.num_threads = 2;
      options.tile_size = 64;
      options.query_ctx = &ctx;
      options.spill = 1;
      Result<QueryResult> result =
          MakeStrategy(kAllStrategies[c], micro_->catalog, options)
              ->Execute(plan);
      if (!result.ok()) {
        errors[c] = result.status().ToString();
      } else if (!(*result == baselines[c])) {
        errors[c] = "result mismatch vs sequential baseline";
      }
      spills[c] = ctx.spills();
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty())
        << StrategyKindName(kAllStrategies[c]) << ": " << errors[c];
    EXPECT_GT(spills[c], 0) << StrategyKindName(kAllStrategies[c]);
  }

  // Every per-query scratch directory was removed on completion.
  int stranded = 0;
  DIR* d = ::opendir(spill_base.c_str());
  ASSERT_NE(d, nullptr);
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") ++stranded;
  }
  ::closedir(d);
  EXPECT_EQ(stranded, 0);

  unsetenv("SWOLE_SPILL_DIR");
  ::rmdir(spill_base.c_str());
}

TEST_F(ServingTest, SharedSchedulerReportsPoolState) {
  EXPECT_GE(exec::GlobalPoolThreadCap(), 8);
  EXPECT_LE(exec::GlobalPoolThreadCap(), 256);

  // Drive a parallel region so the pool has spawned workers, then check
  // the spawn count respects the cap.
  QueryPlan plan = MicroQ1(false, 37);
  StrategyOptions options;
  options.num_threads = 8;
  ASSERT_TRUE(MakeStrategy(StrategyKind::kSwole, micro_->catalog, options)
                  ->Execute(plan)
                  .ok());
  EXPECT_GE(exec::GlobalPoolThreadsSpawned(), 1);
  EXPECT_LE(exec::GlobalPoolThreadsSpawned(), exec::GlobalPoolThreadCap());
}

TEST_F(ServingTest, PriorityPlumbsToTheQueryContext) {
  exec::QueryContext ctx;
  EXPECT_EQ(ctx.priority(), 0);
  QueryPlan plan = MicroQ1(false, 37);
  StrategyOptions options;
  options.num_threads = 2;
  options.query_ctx = &ctx;
  options.priority = 7;
  ASSERT_TRUE(MakeStrategy(StrategyKind::kSwole, micro_->catalog, options)
                  ->Execute(plan)
                  .ok());
  EXPECT_EQ(ctx.priority(), 7);
}

}  // namespace
}  // namespace swole
