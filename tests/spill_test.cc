// Spill-to-disk robustness tests (DESIGN.md §14): a group-by whose hash
// table needs ~8x the memory budget must complete by spilling, bit-identical
// to the unconstrained run, across every strategy engine, the reference
// oracle, and the JIT host path, at every thread count. Every spill I/O
// fault site must surface as a structured Status — never a crash — and no
// run may strand spill files on disk, fault-injected or not.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "engine/reference_engine.h"
#include "exec/query_context.h"
#include "exec/spill.h"
#include "micro/micro.h"
#include "strategies/strategy.h"

namespace swole {
namespace {

namespace fs = std::filesystem;

using codegen::ExecutionReport;
using codegen::GeneratorOptions;
using codegen::KernelCache;
using exec::QueryContext;
using exec::SpillConfig;
using exec::SpillManager;

constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kDataCentric, StrategyKind::kHybrid, StrategyKind::kRof,
    StrategyKind::kSwole};

// The seven deterministic fault sites on the spill I/O path (exec/spill.cc).
constexpr const char* kSpillFaultSites[] = {
    "spill_create", "spill_write",  "spill_flush",    "spill_read",
    "spill_unlink", "spill_enospc", "spill_checksum"};

// The grouped micro plan below builds a ~3MB group table (100K keys,
// 131072 slots x 24B); this budget makes the table need 8x the limit.
constexpr int64_t kTightBudget = 393'216;

// Small tiles bound the per-batch distinct-key count, so a worker's
// freshly-reset table after a spill stays far below the budget even when
// several workers charge the same context.
constexpr int64_t kSpillTile = 512;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

int64_t CountFilesUnder(const std::string& dir) {
  int64_t files = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_directory(ec)) ++files;
  }
  return files;
}

class SpillTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 400'001;  // caps the group-key cardinality at 100K
    config.s_small_rows = 100;
    config.s_large_rows = 1'000;
    config.c_cardinalities = {100'000};
    config.seed = 17;
    micro_ = MicroData::Generate(config).release();
  }
  static void TearDownTestSuite() {
    delete micro_;
    micro_ = nullptr;
  }

  void SetUp() override {
    FaultInjector::Global().ClearAll();
    char tmpl[] = "/tmp/swole_spill_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    spill_base_ = tmpl;
    spill_dir_env_ = std::make_unique<ScopedEnv>("SWOLE_SPILL_DIR",
                                                 spill_base_);
  }
  void TearDown() override {
    FaultInjector::Global().ClearAll();
    spill_dir_env_.reset();
    std::error_code ec;
    fs::remove_all(spill_base_, ec);
  }

  // select sum(r_a * r_b) from R where r_x < 100 group by r_c_100000:
  // every row survives the filter, so the group table holds all 100K keys.
  static QueryPlan SpillingPlan() {
    return MicroQ2(micro_->c_columns[0], micro_->c_actual[0], /*sel=*/100);
  }

  void ExpectNoStrandedSpillFiles() {
    EXPECT_EQ(CountFilesUnder(spill_base_), 0)
        << "spill scratch files leaked under " << spill_base_;
  }

  static MicroData* micro_;
  std::string spill_base_;
  std::unique_ptr<ScopedEnv> spill_dir_env_;
};

MicroData* SpillTest::micro_ = nullptr;

// ---- Bit-identity under an 8x-too-small budget ----

TEST_F(SpillTest, SpillingGroupByBitIdenticalAcrossStrategiesAndThreads) {
  const QueryPlan plan = SpillingPlan();
  ReferenceEngine oracle(micro_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  // Uniform draws miss ~e^-4 of the key space; the table still holds
  // ~98K groups (131072 slots x 24B ~= 3MB, 8x the budget).
  ASSERT_GT(expected->NumGroups(), micro_->c_actual[0] * 9 / 10);

  for (StrategyKind kind : kAllStrategies) {
    for (int threads : {1, 2, 8}) {
      QueryContext::Limits limits;
      limits.mem_limit_bytes = kTightBudget;
      QueryContext ctx(limits);
      StrategyOptions options;
      options.query_ctx = &ctx;
      options.num_threads = threads;
      options.tile_size = kSpillTile;
      options.spill = 1;
      std::unique_ptr<Strategy> engine =
          MakeStrategy(kind, micro_->catalog, options);
      Result<QueryResult> actual = engine->Execute(plan);
      ASSERT_TRUE(actual.ok())
          << engine->name() << " threads=" << threads << ": "
          << actual.status().ToString();
      EXPECT_EQ(*actual, *expected)
          << engine->name() << " diverges at " << threads << " threads";
      EXPECT_GT(ctx.spills(), 0)
          << engine->name() << " threads=" << threads
          << ": budget never bound, the spill path was not exercised";
      ExpectNoStrandedSpillFiles();
    }
  }
}

TEST_F(SpillTest, ReferenceEngineSpillsBitIdentical) {
  const QueryPlan plan = SpillingPlan();
  ReferenceEngine oracle(micro_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok());

  QueryContext::Limits limits;
  limits.mem_limit_bytes = kTightBudget;
  QueryContext ctx(limits);
  ctx.set_spill_enabled(true);
  ReferenceEngine governed(micro_->catalog);
  governed.set_query_context(&ctx);
  Result<QueryResult> actual = governed.Execute(plan);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(*actual, *expected);
  EXPECT_GT(ctx.spills(), 0);
  ExpectNoStrandedSpillFiles();
}

TEST_F(SpillTest, JitBudgetBreachFallsBackToSpillingInterpreter) {
  KernelCache::Global().Clear();
  // The generated kernel keeps its in-memory group table (stable cache
  // keys); its budget breach retries the same strategy interpreted, under
  // the same context, where the group table spills.
  ScopedEnv limit("SWOLE_MEM_LIMIT", std::to_string(kTightBudget));
  ScopedEnv spill("SWOLE_SPILL", "auto");

  const QueryPlan plan = SpillingPlan();
  ReferenceEngine oracle(micro_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok());

  GeneratorOptions gen;
  gen.strategy = StrategyKind::kSwole;
  ExecutionReport report;
  Result<QueryResult> result =
      codegen::ExecuteWithFallback(plan, micro_->catalog, gen, {}, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *expected);
  EXPECT_TRUE(report.used_fallback);
  EXPECT_NE(report.fallback_reason.find("BudgetExceeded"), std::string::npos)
      << report.fallback_reason;
  ExpectNoStrandedSpillFiles();
}

// ---- Degradation ladder endpoints ----

TEST_F(SpillTest, SpillOffKeepsBudgetAbortBehavior) {
  QueryContext::Limits limits;
  limits.mem_limit_bytes = kTightBudget;
  QueryContext ctx(limits);
  StrategyOptions options;
  options.query_ctx = &ctx;
  options.tile_size = kSpillTile;
  options.spill = 0;  // forced off: the breach must abort, not spill
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, options);
  Result<QueryResult> result = engine->Execute(SpillingPlan());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded)
      << result.status().ToString();
  EXPECT_EQ(ctx.spills(), 0);
  ExpectNoStrandedSpillFiles();
}

TEST_F(SpillTest, RepartitionDepthExhaustionReturnsSpillFailed) {
  // Two-way fan-out and one repartition level: a 100K-group partition can
  // never fit a 64KB budget, so the ladder must end in a structured
  // kSpillFailed — not a crash, not an infinite repartition loop.
  ScopedEnv partitions("SWOLE_SPILL_PARTITIONS", "2");
  ScopedEnv depth("SWOLE_SPILL_DEPTH", "1");
  QueryContext::Limits limits;
  limits.mem_limit_bytes = 64 * 1024;
  QueryContext ctx(limits);
  StrategyOptions options;
  options.query_ctx = &ctx;
  options.tile_size = kSpillTile;
  options.spill = 1;
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, options);
  Result<QueryResult> result = engine->Execute(SpillingPlan());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSpillFailed)
      << result.status().ToString();
  EXPECT_TRUE(result.status().IsGovernance());
  ExpectNoStrandedSpillFiles();
}

// ---- Fault sweep over every spill I/O site ----

TEST_F(SpillTest, SpillFaultSweepStructuredStatusNeverLeaks) {
  const QueryPlan plan = SpillingPlan();
  ReferenceEngine oracle(micro_->catalog);
  Result<QueryResult> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok());

  for (const char* site : kSpillFaultSites) {
    for (int threads : {1, 2, 8}) {
      FaultInjector::Global().ClearAll();
      FaultInjector::Global().SetFault(site, 1.0);
      QueryContext::Limits limits;
      limits.mem_limit_bytes = kTightBudget;
      QueryContext ctx(limits);
      StrategyOptions options;
      options.query_ctx = &ctx;
      options.num_threads = threads;
      options.tile_size = kSpillTile;
      options.spill = 1;
      std::unique_ptr<Strategy> engine =
          MakeStrategy(StrategyKind::kDataCentric, micro_->catalog, options);
      Result<QueryResult> result = engine->Execute(plan);
      // Some sites fire only on paths a given run skips (e.g. the
      // checksum verify of a partition that never spilled); success then
      // still has to be the right answer. A failure must be a structured
      // Status naming the injected site — except spill_checksum, which
      // corrupts the computed digest and so surfaces as the same checksum
      // mismatch a real bit flip would.
      if (result.ok()) {
        EXPECT_EQ(*result, *expected) << "site=" << site;
      } else {
        EXPECT_FALSE(result.status().message().empty())
            << "site=" << site << " threads=" << threads;
        const std::string text = result.status().ToString();
        const bool structured =
            text.find("injected fault") != std::string::npos ||
            (std::string(site) == "spill_checksum" &&
             text.find("checksum mismatch") != std::string::npos);
        EXPECT_TRUE(structured)
            << "site=" << site << " threads=" << threads << ": " << text;
      }
      ExpectNoStrandedSpillFiles();
    }
  }
  FaultInjector::Global().ClearAll();
}

TEST_F(SpillTest, AllSpillFaultSitesAreRegistered) {
  // SWOLE_FAULT=list prints this registry at startup; the sweep above is
  // only exhaustive if every site the spill path uses is registered.
  auto sites = FaultInjector::RegisteredSites();
  for (const char* site : kSpillFaultSites) {
    bool found = false;
    for (const auto& [name, desc] : sites) {
      if (name == site) {
        found = true;
        EXPECT_FALSE(desc.empty()) << site;
      }
    }
    EXPECT_TRUE(found) << site << " is not a registered fault site";
  }
}

// ---- SpillManager unit: on-disk roundtrip and checksum verification ----

TEST_F(SpillTest, SpillManagerRoundtripMergesFragments) {
  SpillConfig config = SpillConfig::FromEnv();
  config.enabled = true;
  config.num_partitions = 4;
  SpillManager spill(config, /*payload_width=*/2, /*ctx=*/nullptr);

  // Two fragments per key, spilled in interleaved order: the merged value
  // must be the fragment sum regardless of arrival order.
  constexpr int64_t kKeys = 1'000;
  for (int64_t pass = 0; pass < 2; ++pass) {
    for (int64_t k = 0; k < kKeys; ++k) {
      int64_t payload[2] = {k + pass, 10 * k};
      ASSERT_TRUE(spill.SpillRow(k, payload).ok());
    }
    spill.NoteSpillEvent();
  }
  ASSERT_TRUE(spill.Flush().ok());
  EXPECT_TRUE(spill.spilled());
  EXPECT_EQ(spill.rows_spilled(), 2 * kKeys);
  EXPECT_GT(spill.bytes_written(), 2 * kKeys * 3 * 8);

  auto merge_fn = [](int64_t* dst, const int64_t* src) {
    dst[0] += src[0];
    dst[1] += src[1];
  };
  std::vector<int64_t> rows;
  for (int p = 0; p < config.num_partitions; ++p) {
    ASSERT_TRUE(spill.MergePartition(p, merge_fn, &rows).ok()) << p;
  }
  ASSERT_EQ(rows.size(), static_cast<size_t>(kKeys * 3));
  std::vector<bool> seen(kKeys, false);
  for (size_t i = 0; i < rows.size(); i += 3) {
    int64_t k = rows[i];
    ASSERT_GE(k, 0);
    ASSERT_LT(k, kKeys);
    EXPECT_FALSE(seen[k]) << "key " << k << " merged twice";
    seen[k] = true;
    EXPECT_EQ(rows[i + 1], 2 * k + 1) << k;
    EXPECT_EQ(rows[i + 2], 20 * k) << k;
  }
}

TEST_F(SpillTest, CorruptedSpillBlockFailsChecksumNotCrash) {
  SpillConfig config = SpillConfig::FromEnv();
  config.enabled = true;
  config.num_partitions = 2;
  SpillManager spill(config, /*payload_width=*/1, /*ctx=*/nullptr);
  for (int64_t k = 0; k < 2'000; ++k) {
    int64_t payload[1] = {k};
    ASSERT_TRUE(spill.SpillRow(k, payload).ok());
  }
  spill.NoteSpillEvent();
  ASSERT_TRUE(spill.Flush().ok());

  // Flip one payload byte in every run file on disk, past the 16-byte file
  // header and the 16-byte block header.
  int64_t corrupted = 0;
  for (fs::recursive_directory_iterator it(spill_base_), end; it != end;
       ++it) {
    if (it->is_directory()) continue;
    std::fstream f(it->path(), std::ios::in | std::ios::out |
                                   std::ios::binary);
    ASSERT_TRUE(f.is_open()) << it->path();
    f.seekp(16 + 16 + 3);
    char byte = 0;
    f.seekg(16 + 16 + 3);
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(16 + 16 + 3);
    f.write(&byte, 1);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0) << "no spill run files found to corrupt";

  auto merge_fn = [](int64_t* dst, const int64_t* src) { dst[0] += src[0]; };
  for (int p = 0; p < config.num_partitions; ++p) {
    std::vector<int64_t> rows;
    Status status = spill.MergePartition(p, merge_fn, &rows);
    ASSERT_FALSE(status.ok()) << "partition " << p
                              << " accepted corrupted rows";
    EXPECT_NE(status.ToString().find("checksum"), std::string::npos)
        << status.ToString();
  }
}

}  // namespace
}  // namespace swole
