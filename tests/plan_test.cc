// Unit tests for the plan algebra: validation catches malformed plans,
// ToString renders stable shapes, the catalog behaves, and the result
// container's sorting/equality semantics hold.

#include <gtest/gtest.h>

#include <memory>

#include "plan/plan.h"
#include "plan/result.h"
#include "storage/table.h"

namespace swole {
namespace {

std::unique_ptr<Column> IntColumn(const std::string& name,
                                  std::vector<int64_t> values) {
  auto col =
      std::make_unique<Column>(name, ColumnType::Int(PhysicalType::kInt64));
  for (int64_t v : values) col->Append(v);
  return col;
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = std::make_shared<Table>("s");
    ASSERT_TRUE(s->AddColumn(IntColumn("s_pk", {0, 1, 2, 3})).ok());
    ASSERT_TRUE(s->AddColumn(IntColumn("s_x", {5, 6, 7, 8})).ok());

    auto r = std::make_shared<Table>("r");
    ASSERT_TRUE(r->AddColumn(IntColumn("r_fk", {3, 0, 1, 1, 2})).ok());
    ASSERT_TRUE(r->AddColumn(IntColumn("r_a", {10, 20, 30, 40, 50})).ok());
    Result<FkIndex> index =
        FkIndex::Build(r->ColumnRef("r_fk"), s->ColumnRef("s_pk"));
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(r->AddFkIndex("r_fk", std::move(index).value()).ok());

    ASSERT_TRUE(catalog_.AddTable(r).ok());
    ASSERT_TRUE(catalog_.AddTable(s).ok());
  }

  QueryPlan BasePlan() {
    QueryPlan plan;
    plan.name = "test";
    plan.fact_table = "r";
    plan.aggs.emplace_back(AggKind::kSum, Col("r_a"), "sum_a");
    return plan;
  }

  Catalog catalog_;
};

TEST_F(PlanTest, CatalogRejectsDuplicatesAndFindsTables) {
  EXPECT_TRUE(catalog_.GetTable("r").ok());
  EXPECT_FALSE(catalog_.GetTable("zzz").ok());
  EXPECT_EQ(catalog_.AddTable(std::make_shared<Table>("r")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.TableNames().size(), 2u);
}

TEST_F(PlanTest, ValidMinimalPlan) {
  EXPECT_TRUE(ValidatePlan(BasePlan(), catalog_).ok());
}

TEST_F(PlanTest, RejectsUnknownFactTable) {
  QueryPlan plan = BasePlan();
  plan.fact_table = "nope";
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(), StatusCode::kNotFound);
}

TEST_F(PlanTest, RejectsNonBooleanFilter) {
  QueryPlan plan = BasePlan();
  plan.fact_filter = Col("r_a");
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(), StatusCode::kTypeError);
}

TEST_F(PlanTest, RejectsHopWithoutFkIndex) {
  QueryPlan plan = BasePlan();
  DimJoin dim;
  dim.hop = {"r_a", "s", "s_pk"};  // r_a has no registered index
  plan.dims.push_back(std::move(dim));
  EXPECT_FALSE(ValidatePlan(plan, catalog_).ok());
}

TEST_F(PlanTest, RejectsBadPkColumnInHop) {
  QueryPlan plan = BasePlan();
  DimJoin dim;
  dim.hop = {"r_fk", "s", "not_a_column"};
  plan.dims.push_back(std::move(dim));
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(), StatusCode::kNotFound);
}

TEST_F(PlanTest, AcceptsValidDimAndPath) {
  QueryPlan plan = BasePlan();
  DimJoin dim;
  dim.hop = {"r_fk", "s", "s_pk"};
  dim.filter = Lt(Col("s_x"), Lit(7));
  plan.dims.push_back(std::move(dim));
  ColumnPath path;
  path.alias = "sx";
  path.hops = {{"r_fk", "s", "s_pk"}};
  path.column = "s_x";
  plan.paths.push_back(std::move(path));
  plan.path_equalities.push_back({"sx", "sx"});
  EXPECT_TRUE(ValidatePlan(plan, catalog_).ok());
}

TEST_F(PlanTest, RejectsDuplicateAlias) {
  QueryPlan plan = BasePlan();
  for (int i = 0; i < 2; ++i) {
    ColumnPath path;
    path.alias = "p";
    path.hops = {{"r_fk", "s", "s_pk"}};
    path.column = "s_x";
    plan.paths.push_back(std::move(path));
  }
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, RejectsUnknownEqualityAlias) {
  QueryPlan plan = BasePlan();
  plan.path_equalities.push_back({"ghost", "ghost"});
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(), StatusCode::kNotFound);
}

TEST_F(PlanTest, RejectsGroupByConflicts) {
  QueryPlan plan = BasePlan();
  plan.group_by = Col("r_fk");
  plan.group_by_path = "something";
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, RejectsCountWithExpression) {
  QueryPlan plan = BasePlan();
  plan.aggs.clear();
  AggSpec bad;
  bad.kind = AggKind::kCount;
  bad.expr = Col("r_a");
  bad.name = "bad";
  plan.aggs.push_back(std::move(bad));
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, RejectsGroupedMinMax) {
  QueryPlan plan = BasePlan();
  plan.group_by = Col("r_fk");
  plan.aggs.clear();
  plan.aggs.emplace_back(AggKind::kMin, Col("r_a"), "min_a");
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(),
            StatusCode::kUnimplemented);
}

TEST_F(PlanTest, RejectsEmptyAggList) {
  QueryPlan plan = BasePlan();
  plan.aggs.clear();
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, RejectsHistogramWithoutGroupBy) {
  QueryPlan plan = BasePlan();
  plan.histogram_of_agg0 = true;
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, RejectsSeedWithoutGroupBy) {
  QueryPlan plan = BasePlan();
  plan.group_seed = GroupSeed{"s", "s_pk"};
  EXPECT_EQ(ValidatePlan(plan, catalog_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, ToStringRendersStructure) {
  QueryPlan plan = BasePlan();
  plan.fact_filter = Lt(Col("r_a"), Lit(25));
  DimJoin dim;
  dim.hop = {"r_fk", "s", "s_pk"};
  dim.filter = Lt(Col("s_x"), Lit(7));
  plan.dims.push_back(std::move(dim));
  plan.group_by = Col("r_fk");
  std::string s = plan.ToString();
  EXPECT_NE(s.find("scan r"), std::string::npos);
  EXPECT_NE(s.find("join s"), std::string::npos);
  EXPECT_NE(s.find("group by"), std::string::npos);
  EXPECT_NE(s.find("sum"), std::string::npos);
}

TEST_F(PlanTest, DimCloneTreeIsDeep) {
  DimJoin dim;
  dim.hop = {"r_fk", "s", "s_pk"};
  dim.filter = Lt(Col("s_x"), Lit(7));
  DimJoin child;
  child.hop = {"x", "y", "z"};
  dim.children.push_back(std::move(child));
  DimJoin copy = dim.CloneTree();
  EXPECT_EQ(copy.children.size(), 1u);
  copy.filter->children[1]->literal = 99;
  EXPECT_EQ(dim.filter->children[1]->literal, 7);
}

TEST(QueryResultTest, SortGroupsOrdersKeysAndAggsTogether) {
  QueryResult result;
  result.grouped = true;
  result.num_aggs = 2;
  int64_t a1[] = {10, 11};
  int64_t a2[] = {20, 21};
  int64_t a3[] = {30, 31};
  result.AddGroup(5, a1);
  result.AddGroup(1, a2);
  result.AddGroup(3, a3);
  result.SortGroups();
  EXPECT_EQ(result.group_keys, (std::vector<int64_t>{1, 3, 5}));
  EXPECT_EQ(result.GroupAgg(0, 0), 20);
  EXPECT_EQ(result.GroupAgg(1, 1), 31);
  EXPECT_EQ(result.GroupAgg(2, 0), 10);
}

TEST(QueryResultTest, EqualityIgnoresNames) {
  QueryResult a;
  a.scalar = {1, 2};
  a.agg_names = {"x", "y"};
  QueryResult b;
  b.scalar = {1, 2};
  b.agg_names = {"p", "q"};
  EXPECT_EQ(a, b);
  b.scalar[1] = 3;
  EXPECT_FALSE(a == b);
}

TEST(QueryResultTest, ToStringTruncates) {
  QueryResult result;
  result.grouped = true;
  result.num_aggs = 1;
  for (int64_t k = 0; k < 30; ++k) {
    int64_t v = k;
    result.AddGroup(k, &v);
  }
  std::string s = result.ToString(/*max_rows=*/5);
  EXPECT_NE(s.find("30 groups"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace swole
