// Unit tests for src/common: Status/Result, logging checks, PRNG,
// string/date utilities, bit utilities, env parsing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/bit_util.h"
#include "common/env.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace swole {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeError), "TypeError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SWOLE_ASSIGN_OR_RETURN(int h, Half(x));
  SWOLE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextBounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBuckets)]++;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets / 5);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  Shuffle(&v, &rng);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator zipf(100, 0.0, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(), 100u);
}

TEST(ZipfTest, SkewFavorsSmallValues) {
  ZipfGenerator zipf(1000, 0.9, 1);
  int small = 0;
  for (int i = 0; i < 10000; ++i) {
    if (zipf.Next() < 10) small++;
  }
  // With theta=0.9 the 10 hottest of 1000 keys draw far more than the
  // uniform 1% of samples.
  EXPECT_GT(small, 1000);
}

TEST(BitUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(bit_util::NextPowerOfTwo(0), 1u);
  EXPECT_EQ(bit_util::NextPowerOfTwo(1), 1u);
  EXPECT_EQ(bit_util::NextPowerOfTwo(2), 2u);
  EXPECT_EQ(bit_util::NextPowerOfTwo(3), 4u);
  EXPECT_EQ(bit_util::NextPowerOfTwo(1023), 1024u);
  EXPECT_EQ(bit_util::NextPowerOfTwo(1025), 2048u);
}

TEST(BitUtilTest, WordsForBits) {
  EXPECT_EQ(bit_util::WordsForBits(0), 0u);
  EXPECT_EQ(bit_util::WordsForBits(1), 1u);
  EXPECT_EQ(bit_util::WordsForBits(64), 1u);
  EXPECT_EQ(bit_util::WordsForBits(65), 2u);
}

TEST(BitUtilTest, RoundUp) {
  EXPECT_EQ(bit_util::RoundUp(5, 8), 8u);
  EXPECT_EQ(bit_util::RoundUp(8, 8), 8u);
  EXPECT_EQ(bit_util::RoundUp(9, 8), 16u);
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%05d", 42), "00042");
}

TEST(StringUtilTest, SplitJoin) {
  std::vector<std::string> parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin(parts, "|"), "a|b||c");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("PROMO BURNISHED", "PROMO"));
  EXPECT_FALSE(StartsWith("X", "PROMO"));
  EXPECT_TRUE(EndsWith("special requests", "requests"));
}

TEST(LikeMatchTest, ExactAndWildcards) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "hell"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_lo"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
}

TEST(LikeMatchTest, Q13StylePattern) {
  // TPC-H Q13: o_comment not like '%special%requests%'
  EXPECT_TRUE(LikeMatch("the special urgent requests", "%special%requests%"));
  EXPECT_TRUE(LikeMatch("specialrequests", "%special%requests%"));
  EXPECT_FALSE(LikeMatch("requests special", "%special%requests%"));
  EXPECT_FALSE(LikeMatch("nothing here", "%special%requests%"));
}

TEST(LikeMatchTest, BacktrackingStress) {
  EXPECT_TRUE(LikeMatch("aaaaaaaaab", "%a%a%b"));
  EXPECT_FALSE(LikeMatch("aaaaaaaaac", "%a%a%b"));
  EXPECT_TRUE(LikeMatch("abcabcabc", "%abc%abc"));
}

TEST(LikeMatchTest, EmbeddedNulIsAnOrdinaryByte) {
  // string_view carries length, so NUL neither terminates the value nor
  // the pattern; '_' and '%' consume it like any byte.
  const std::string_view v("ab\0cd", 5);
  EXPECT_TRUE(LikeMatch(v, std::string_view("ab\0cd", 5)));
  EXPECT_FALSE(LikeMatch(v, "abcd"));   // NUL is not skippable
  EXPECT_FALSE(LikeMatch(v, "ab"));     // nor a terminator
  EXPECT_TRUE(LikeMatch(v, "ab_cd"));
  EXPECT_TRUE(LikeMatch(v, std::string_view("%\0%", 3)));
  EXPECT_TRUE(LikeMatch(v, std::string_view("ab\0%", 4)));
  EXPECT_FALSE(LikeMatch("abcd", std::string_view("ab\0cd", 5)));
  EXPECT_TRUE(LikeMatch(std::string_view("\0", 1), "_"));
}

TEST(LikeMatchTest, NonAsciiBytesMatchThemselvesOnly) {
  // High-bit bytes are compared as raw bytes regardless of char
  // signedness; '_' consumes one byte, so a two-byte UTF-8 sequence needs
  // two '_'s.
  // Literal splicing keeps the 'c' after \xA9 out of the hex escape.
  const std::string_view euro("pri\xC3\xA9" "ce");  // 'é' as two bytes
  EXPECT_TRUE(LikeMatch(euro, "pri\xC3\xA9" "ce"));
  EXPECT_TRUE(LikeMatch(euro, "pri__ce"));
  EXPECT_FALSE(LikeMatch(euro, "pri_ce"));
  EXPECT_TRUE(LikeMatch(euro, "%\xC3\xA9%"));
  EXPECT_FALSE(LikeMatch(euro, "%\xC3\xA8%"));  // è: last byte differs
  EXPECT_TRUE(LikeMatch("\xFF\xFE", "%\xFE"));
}

TEST(LikeMatchTest, EmptyValueAndEmptyPattern) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_TRUE(LikeMatch("", "%%"));
  EXPECT_FALSE(LikeMatch("", "%_%"));
  EXPECT_FALSE(LikeMatch("x", ""));
  EXPECT_FALSE(LikeMatch("", "a"));
  EXPECT_TRUE(LikeMatch("x", "%x%"));
}

TEST(DecimalFormatTest, Basics) {
  EXPECT_EQ(FormatDecimal(123456, 2), "1234.56");
  EXPECT_EQ(FormatDecimal(5, 2), "0.05");
  EXPECT_EQ(FormatDecimal(-123456, 2), "-1234.56");
  EXPECT_EQ(FormatDecimal(-5, 2), "-0.05");
  EXPECT_EQ(FormatDecimal(42, 0), "42");
}

TEST(DateTest, RoundTrip) {
  EXPECT_EQ(DateToDays(1970, 1, 1), 0);
  EXPECT_EQ(DateToDays(1970, 1, 2), 1);
  EXPECT_EQ(DaysToDateString(0), "1970-01-01");
  for (const char* date :
       {"1992-01-01", "1995-03-15", "1998-12-01", "2000-02-29"}) {
    EXPECT_EQ(DaysToDateString(ParseDate(date)), date);
  }
}

TEST(DateTest, TpchRangeOrdering) {
  // The TPC-H date domain is [1992-01-01, 1998-12-31].
  int32_t lo = ParseDate("1992-01-01");
  int32_t hi = ParseDate("1998-12-31");
  EXPECT_LT(lo, hi);
  EXPECT_EQ(hi - lo + 1, 2557);  // 7 years incl. 1992 + 1996 leap days
}

TEST(EnvTest, ParsesAndFallsBack) {
  ::setenv("SWOLE_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvInt64("SWOLE_TEST_INT", 5), 123);
  ::setenv("SWOLE_TEST_INT", "garbage", 1);
  EXPECT_EQ(GetEnvInt64("SWOLE_TEST_INT", 5), 5);
  ::unsetenv("SWOLE_TEST_INT");
  EXPECT_EQ(GetEnvInt64("SWOLE_TEST_INT", 5), 5);

  ::setenv("SWOLE_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("SWOLE_TEST_DBL", 1.0), 0.25);
  ::unsetenv("SWOLE_TEST_DBL");

  EXPECT_EQ(GetEnvString("SWOLE_TEST_STR", "dflt"), "dflt");
}

}  // namespace
}  // namespace swole
