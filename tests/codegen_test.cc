// Code-generation tests: the emitted source contains each strategy's
// signature loop shapes (golden-ish structural checks of Fig. 1/3/4), the
// JIT pipeline compiles and loads it, and the compiled kernels produce
// bit-exact results against the reference oracle across strategies,
// selectivities, and plan shapes.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>

#include "codegen/generator.h"
#include "codegen/jit.h"
#include "engine/reference_engine.h"
#include "micro/micro.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "storage/table.h"

namespace swole {
namespace {

using codegen::CompiledKernel;
using codegen::GeneratedKernel;
using codegen::GeneratorOptions;

class CodegenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 10'000;
    config.s_small_rows = 50;
    config.s_large_rows = 500;
    config.c_cardinalities = {10, 200};
    config.seed = 5;
    data_ = MicroData::Generate(config).release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static GeneratorOptions Options(StrategyKind kind,
                                  AggChoice choice = AggChoice::kValueMasking) {
    GeneratorOptions options;
    options.strategy = kind;
    options.agg_choice = choice;
    return options;
  }

  static void CheckCompiledMatchesOracle(const QueryPlan& plan,
                                         const GeneratorOptions& options) {
    ReferenceEngine oracle(data_->catalog);
    QueryResult expected = oracle.Execute(plan).value();
    Result<std::unique_ptr<CompiledKernel>> compiled =
        codegen::GenerateAndCompile(plan, data_->catalog, options);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    Result<QueryResult> actual = (*compiled)->Run(data_->catalog);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(*actual, expected)
        << plan.name << " strategy "
        << StrategyKindName(options.strategy) << "\nsource:\n"
        << (*compiled)->kernel().source;
  }

  static MicroData* data_;
};

MicroData* CodegenTest::data_ = nullptr;

TEST_F(CodegenTest, DataCentricSourceHasFusedBranchingLoop) {
  GeneratedKernel kernel =
      codegen::GenerateKernel(MicroQ1(false, 13), data_->catalog,
                              Options(StrategyKind::kDataCentric))
          .value();
  // Fig. 1 top: a single loop, an if with the predicate, no cmp/idx arrays.
  EXPECT_NE(kernel.source.find("if (!("), std::string::npos);
  EXPECT_EQ(kernel.source.find("cmp["), std::string::npos);
  EXPECT_EQ(kernel.source.find("idx["), std::string::npos);
  EXPECT_NE(kernel.source.find("continue;"), std::string::npos);
}

TEST_F(CodegenTest, HybridSourceHasPrepassAndSelectionVector) {
  GeneratedKernel kernel =
      codegen::GenerateKernel(MicroQ1(false, 13), data_->catalog,
                              Options(StrategyKind::kHybrid))
          .value();
  // Fig. 1 middle: tiled prepass into cmp — the column-vs-literal leaf
  // lowers to the dispatched width-native CompareLit kernel — then the
  // no-branch selection-vector kernel (scalar/SWAR/AVX2 at runtime).
  EXPECT_NE(kernel.source.find("swole::kernels::CompareLit("),
            std::string::npos);
  EXPECT_NE(
      kernel.source.find("swole::kernels::SelVecFromCmpNoBranch(cmp, len"),
      std::string::npos);
  EXPECT_NE(kernel.source.find("kTile"), std::string::npos);
}

TEST_F(CodegenTest, SwoleValueMaskingSourceMasksTheAggregate) {
  GeneratedKernel kernel =
      codegen::GenerateKernel(MicroQ1(false, 13), data_->catalog,
                              Options(StrategyKind::kSwole))
          .value();
  // Fig. 3: sum(a*b) lowers to the dispatched masked-product kernel;
  // no idx array anywhere in the masked pipeline.
  EXPECT_NE(kernel.source.find("swole::kernels::SumProductMasked("),
            std::string::npos);
  EXPECT_EQ(kernel.source.find("idx["), std::string::npos);

  // Shapes outside the kernel subset (division) stay in the branch-free
  // lane loop with an explicit mask multiply.
  GeneratedKernel div_kernel =
      codegen::GenerateKernel(MicroQ1(true, 13), data_->catalog,
                              Options(StrategyKind::kSwole))
          .value();
  EXPECT_NE(div_kernel.source.find(") * cmp[j];"), std::string::npos);
  EXPECT_EQ(div_kernel.source.find("SumProductMasked"), std::string::npos);
}

TEST_F(CodegenTest, SwoleKeyMaskingSourceMapsToThrowawayKey) {
  GeneratedKernel kernel =
      codegen::GenerateKernel(
          MicroQ2(data_->c_columns[0], data_->c_actual[0], 13),
          data_->catalog,
          Options(StrategyKind::kSwole, AggChoice::kKeyMasking))
          .value();
  // Fig. 4 bottom: masked key select + the reserved throwaway entry,
  // probed per tile with one software-pipelined batch.
  EXPECT_NE(kernel.source.find("kMaskKey"), std::string::npos);
  EXPECT_NE(kernel.source.find("groups.GetOrInsertBatch("),
            std::string::npos);
  EXPECT_NE(kernel.source.find("p[0] += 1;"), std::string::npos);
}

TEST_F(CodegenTest, SwoleJoinSourceUsesPositionalBitmap) {
  GeneratedKernel kernel =
      codegen::GenerateKernel(MicroQ4(false, 50, 50), data_->catalog,
                              Options(StrategyKind::kSwole))
          .value();
  EXPECT_NE(kernel.source.find("PositionalBitmap"), std::string::npos);
  EXPECT_NE(kernel.source.find("bm0.Test(offs0[i + j])"),
            std::string::npos);
  EXPECT_EQ(kernel.source.find("HashTable dim"), std::string::npos);
}

TEST_F(CodegenTest, HashStrategiesJoinViaHashTable) {
  GeneratedKernel kernel =
      codegen::GenerateKernel(MicroQ4(false, 50, 50), data_->catalog,
                              Options(StrategyKind::kHybrid))
          .value();
  EXPECT_NE(kernel.source.find("swole::HashTable dim0"), std::string::npos);
  EXPECT_NE(kernel.source.find("dim0.ContainsBatch("), std::string::npos);
  EXPECT_EQ(kernel.source.find("PositionalBitmap"), std::string::npos);
}

TEST_F(CodegenTest, RejectsUnsupportedPlans) {
  GeneratorOptions options = Options(StrategyKind::kHybrid);
  // ROF emission is not implemented.
  EXPECT_EQ(codegen::GenerateKernel(MicroQ1(false, 10), data_->catalog,
                                    Options(StrategyKind::kRof))
                .status()
                .code(),
            StatusCode::kUnimplemented);
  // Histogram post-steps are outside the subset.
  QueryPlan plan = MicroQ2(data_->c_columns[0], 10, 50);
  plan.histogram_of_agg0 = true;
  EXPECT_EQ(
      codegen::GenerateKernel(plan, data_->catalog, options).status().code(),
      StatusCode::kUnimplemented);
}

struct JitCase {
  StrategyKind kind;
  AggChoice choice;
};

class CodegenJitSweep : public CodegenTest,
                        public ::testing::WithParamInterface<int> {
 protected:
  static GeneratorOptions CaseOptions() {
    switch (GetParam()) {
      case 0:
        return Options(StrategyKind::kDataCentric);
      case 1:
        return Options(StrategyKind::kHybrid);
      case 2:
        return Options(StrategyKind::kSwole, AggChoice::kValueMasking);
      case 3:
        return Options(StrategyKind::kSwole, AggChoice::kKeyMasking);
      default:
        return Options(StrategyKind::kSwole, AggChoice::kHybridFallback);
    }
  }
};

TEST_P(CodegenJitSweep, ScalarAggregation) {
  CheckCompiledMatchesOracle(MicroQ1(false, 37), CaseOptions());
}

TEST_P(CodegenJitSweep, DivisionAggregation) {
  // Division is safe here even under value masking: r_b >= 1.
  CheckCompiledMatchesOracle(MicroQ1(true, 80), CaseOptions());
}

TEST_P(CodegenJitSweep, GroupByAggregation) {
  CheckCompiledMatchesOracle(
      MicroQ2(data_->c_columns[1], data_->c_actual[1], 45), CaseOptions());
}

TEST_P(CodegenJitSweep, FkJoin) {
  CheckCompiledMatchesOracle(MicroQ4(true, 60, 40), CaseOptions());
}

TEST_P(CodegenJitSweep, Groupjoin) {
  CheckCompiledMatchesOracle(MicroQ5(false, 50, 50), CaseOptions());
}

INSTANTIATE_TEST_SUITE_P(Strategies, CodegenJitSweep,
                         ::testing::Range(0, 5));

TEST_F(CodegenTest, SelectivityBoundaries) {
  for (int64_t sel : {0, 100}) {
    CheckCompiledMatchesOracle(MicroQ1(false, sel),
                               Options(StrategyKind::kDataCentric));
    CheckCompiledMatchesOracle(MicroQ1(false, sel),
                               Options(StrategyKind::kSwole));
  }
}

TEST_F(CodegenTest, TpchQ1AndQ6CompileAndMatchOracle) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  config.seed = 17;
  auto tpch_data = tpch::TpchData::Generate(config);
  ReferenceEngine oracle(tpch_data->catalog);

  for (StrategyKind kind :
       {StrategyKind::kDataCentric, StrategyKind::kHybrid,
        StrategyKind::kSwole}) {
    for (int q = 0; q < 2; ++q) {
      QueryPlan plan = q == 0 ? tpch::Q1(tpch_data->catalog)
                              : tpch::Q6(tpch_data->catalog);
      QueryResult expected = oracle.Execute(plan).value();
      GeneratorOptions options;
      options.strategy = kind;
      options.agg_choice =
          q == 0 ? AggChoice::kKeyMasking : AggChoice::kValueMasking;
      options.group_capacity_hint = 16;
      Result<std::unique_ptr<CompiledKernel>> compiled =
          codegen::GenerateAndCompile(plan, tpch_data->catalog, options);
      ASSERT_TRUE(compiled.ok())
          << plan.name << ": " << compiled.status().ToString();
      Result<QueryResult> actual = (*compiled)->Run(tpch_data->catalog);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(*actual, expected)
          << plan.name << " " << StrategyKindName(kind);
    }
  }
}

TEST_F(CodegenTest, KeepArtifactsLeavesSourceOnDisk) {
  codegen::JitOptions jit;
  jit.keep_artifacts = true;
  Result<std::unique_ptr<CompiledKernel>> compiled =
      codegen::GenerateAndCompile(MicroQ1(false, 10), data_->catalog,
                                  Options(StrategyKind::kHybrid), jit);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::ifstream source((*compiled)->source_path());
  EXPECT_TRUE(source.good());
}

}  // namespace
}  // namespace swole
