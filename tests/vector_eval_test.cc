// Direct tests of VectorEvaluator's override frames (compacted
// evaluation over gathered buffers) — the mechanism behind hybrid/ROF's
// post-gather expression evaluation.

#include <gtest/gtest.h>

#include <memory>

#include "expr/expr.h"
#include "expr/vector_eval.h"
#include "storage/table.h"

namespace swole {
namespace {

class VectorEvalOverrideTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("t");
    auto a = std::make_unique<Column>("a", ColumnType::Int(PhysicalType::kInt8));
    auto b = std::make_unique<Column>("b", ColumnType::Int(PhysicalType::kInt8));
    for (int i = 0; i < 100; ++i) {
      a->Append(i % 50);
      b->Append(1 + i % 7);
    }
    table_->AddColumn(std::move(a)).CheckOK();
    table_->AddColumn(std::move(b)).CheckOK();
  }

  std::unique_ptr<Table> table_;
};

TEST_F(VectorEvalOverrideTest, NumericUsesOverrideBuffers) {
  VectorEvaluator eval(*table_, 16);
  // Pretend lanes were gathered: 4 compacted values per column.
  int64_t a_vals[4] = {10, 20, 30, 40};
  int64_t b_vals[4] = {1, 2, 3, 4};
  VectorEvaluator::Overrides overrides = {{"a", a_vals}, {"b", b_vals}};
  eval.SetOverrides(&overrides);
  ExprPtr expr = Add(Mul(Col("a"), Col("b")), Lit(5));
  int64_t out[4];
  eval.EvalNumeric(*expr, 0, 4, out);
  eval.SetOverrides(nullptr);
  EXPECT_EQ(out[0], 15);
  EXPECT_EQ(out[1], 45);
  EXPECT_EQ(out[2], 95);
  EXPECT_EQ(out[3], 165);
}

TEST_F(VectorEvalOverrideTest, BooleanFastPathsUseOverrides) {
  VectorEvaluator eval(*table_, 16);
  int64_t a_vals[4] = {5, 15, 25, 35};
  VectorEvaluator::Overrides overrides = {{"a", a_vals}};
  eval.SetOverrides(&overrides);
  uint8_t cmp[4];
  ExprPtr lt = Lt(Col("a"), Lit(20));
  eval.EvalBool(*lt, 0, 4, cmp);
  EXPECT_EQ(cmp[0], 1);
  EXPECT_EQ(cmp[1], 1);
  EXPECT_EQ(cmp[2], 0);
  EXPECT_EQ(cmp[3], 0);
  ExprPtr in = InList(Col("a"), {15, 35});
  eval.EvalBool(*in, 0, 4, cmp);
  eval.SetOverrides(nullptr);
  EXPECT_EQ(cmp[0], 0);
  EXPECT_EQ(cmp[1], 1);
  EXPECT_EQ(cmp[2], 0);
  EXPECT_EQ(cmp[3], 1);
}

TEST_F(VectorEvalOverrideTest, ClearingOverridesRestoresTableAccess) {
  VectorEvaluator eval(*table_, 16);
  int64_t a_vals[2] = {1000, 2000};
  VectorEvaluator::Overrides overrides = {{"a", a_vals}};
  eval.SetOverrides(&overrides);
  int64_t out[2];
  eval.EvalNumeric(*Col("a"), 0, 2, out);
  EXPECT_EQ(out[0], 1000);
  eval.SetOverrides(nullptr);
  eval.EvalNumeric(*Col("a"), 0, 2, out);
  EXPECT_EQ(out[0], 0);  // table row 0: 0 % 50
  EXPECT_EQ(out[1], 1);
}

TEST_F(VectorEvalOverrideTest, StartOffsetsApplyToOverrides) {
  VectorEvaluator eval(*table_, 16);
  int64_t a_vals[6] = {0, 1, 2, 3, 4, 5};
  VectorEvaluator::Overrides overrides = {{"a", a_vals}};
  eval.SetOverrides(&overrides);
  int64_t out[3];
  eval.EvalNumeric(*Col("a"), /*start=*/2, /*len=*/3, out);
  eval.SetOverrides(nullptr);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[2], 4);
}

}  // namespace
}  // namespace swole
