// Tests for SWOLE's cost-model-driven technique selection (the Fig. 2
// heuristics): which technique engages on which plan shape, how the
// ablation knobs steer it, and that the decision trace is populated.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "cost/feedback.h"
#include "engine/reference_engine.h"
#include "micro/micro.h"
#include "strategies/swole.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

class SwoleDecisionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 50'000;
    config.s_small_rows = 100;
    config.s_large_rows = 5'000;
    config.c_cardinalities = {10, 5'000};
    config.seed = 3;
    micro_ = MicroData::Generate(config).release();

    tpch::TpchConfig tpch_config;
    tpch_config.scale_factor = 0.002;
    tpch_ = tpch::TpchData::Generate(tpch_config).release();
  }
  static void TearDownTestSuite() {
    delete micro_;
    delete tpch_;
    micro_ = nullptr;
    tpch_ = nullptr;
  }

  static SwoleDecisions Decide(const Catalog& catalog, const QueryPlan& plan,
                               StrategyOptions options = {}) {
    std::unique_ptr<SwoleStrategy> engine =
        MakeSwoleStrategy(catalog, options);
    engine->Execute(plan).status().CheckOK();
    return engine->last_decisions();
  }

  static MicroData* micro_;
  static tpch::TpchData* tpch_;
};

MicroData* SwoleDecisionsTest::micro_ = nullptr;
tpch::TpchData* SwoleDecisionsTest::tpch_ = nullptr;

TEST_F(SwoleDecisionsTest, MemoryBoundScalarPicksValueMasking) {
  // Micro Q1 with multiplication: memory-bound -> VM (Fig. 8a).
  SwoleDecisions d = Decide(micro_->catalog, MicroQ1(false, 50));
  EXPECT_EQ(d.aggregation, "value-masking");
}

TEST_F(SwoleDecisionsTest, ComputeBoundScalarFallsBackToHybrid) {
  // Micro Q1 with division: compute-bound -> hybrid (Fig. 8b).
  SwoleDecisions d = Decide(micro_->catalog, MicroQ1(true, 50));
  EXPECT_EQ(d.aggregation, "hybrid");
}

TEST_F(SwoleDecisionsTest, JoinsUseBitmapsUnlessDisabled) {
  QueryPlan plan = MicroQ4(true, 50, 50);
  EXPECT_TRUE(Decide(micro_->catalog, plan).used_positional_bitmaps);
  StrategyOptions no_bitmaps;
  no_bitmaps.enable_positional_bitmaps = false;
  QueryPlan plan2 = MicroQ4(true, 50, 50);
  EXPECT_FALSE(
      Decide(micro_->catalog, plan2, no_bitmaps).used_positional_bitmaps);
}

TEST_F(SwoleDecisionsTest, AccessMergingEngagesOnSharedAttribute) {
  // Micro Q3 reuses the predicate attribute in the aggregate.
  StrategyOptions vm;
  vm.force_agg = StrategyOptions::ForceAgg::kValueMasking;
  EXPECT_TRUE(Decide(micro_->catalog, MicroQ3(false, 50), vm)
                  .used_access_merging);
  // Micro Q1's aggregate shares nothing with the predicate.
  EXPECT_FALSE(
      Decide(micro_->catalog, MicroQ1(false, 50), vm).used_access_merging);
}

TEST_F(SwoleDecisionsTest, RationaleIsPopulated) {
  SwoleDecisions d = Decide(micro_->catalog, MicroQ1(false, 50));
  EXPECT_NE(d.rationale.find("sigma="), std::string::npos);
  EXPECT_NE(d.rationale.find("comp="), std::string::npos);
}

TEST_F(SwoleDecisionsTest, EagerAggregationConsideredOnlyForGroupjoins) {
  // Micro Q5's shape is EA-eligible: the rationale records the comparison.
  SwoleDecisions d = Decide(
      micro_->catalog, MicroQ5(false, 50, micro_->config.s_small_rows));
  EXPECT_NE(d.rationale.find("EA="), std::string::npos);
  // A scalar query never mentions EA.
  SwoleDecisions d2 = Decide(micro_->catalog, MicroQ1(false, 50));
  EXPECT_EQ(d2.rationale.find("EA="), std::string::npos);
}

TEST_F(SwoleDecisionsTest, TpchQ1PicksKeyMasking) {
  // §IV-A Q1: "SWOLE uses key masking ... masking many individual
  // aggregate values is significantly more expensive than masking the
  // single group-by key."
  SwoleDecisions d =
      Decide(tpch_->catalog, tpch::Q1(tpch_->catalog));
  EXPECT_EQ(d.aggregation, "key-masking");
}

TEST_F(SwoleDecisionsTest, TpchQ3RejectsEagerAggregation) {
  // §IV-A Q3: "our cost model determines that too many keys are filtered
  // by the join for this rewrite to be beneficial."
  SwoleDecisions d =
      Decide(tpch_->catalog, tpch::Q3(tpch_->catalog));
  EXPECT_FALSE(d.used_eager_aggregation);
}

TEST_F(SwoleDecisionsTest, TpchJoinQueriesUseBitmaps) {
  for (auto make : {tpch::Q3, tpch::Q4, tpch::Q5, tpch::Q19}) {
    SwoleDecisions d = Decide(tpch_->catalog, make(tpch_->catalog));
    EXPECT_TRUE(d.used_positional_bitmaps);
  }
}

TEST_F(SwoleDecisionsTest, ForcedChoicesOverrideTheModel) {
  StrategyOptions km;
  km.force_agg = StrategyOptions::ForceAgg::kKeyMasking;
  SwoleDecisions d = Decide(
      micro_->catalog,
      MicroQ2(micro_->c_columns[0], micro_->c_actual[0], 50), km);
  EXPECT_EQ(d.aggregation, "key-masking");
}

TEST_F(SwoleDecisionsTest, RefitProfilesStayThreadInvariantAndBitExact) {
  // Under SWOLE_COST_REFIT=apply with forced refit states — including ones
  // extreme enough to overturn techniques — the chosen aggregation must not
  // depend on the thread count (re-decisions consume thread-invariant
  // bitmap popcounts), and every choice must produce the reference answer.
  struct RefitState {
    double bandwidth;
    double memory;
  };
  const RefitState kStates[] = {{1.0, 1.0}, {4.0, 0.25}, {0.25, 4.0}};

  cost::SetRefitModeForTest(cost::RefitMode::kApply);
  ReferenceEngine oracle(micro_->catalog);
  std::vector<QueryPlan> plans;
  plans.push_back(MicroQ1(false, 50));
  plans.push_back(MicroQ2(micro_->c_columns[1], micro_->c_actual[1], 40));
  plans.push_back(MicroQ4(false, 60, 40));
  plans.push_back(MicroQ5(false, 50, micro_->config.s_small_rows));

  for (const RefitState& state : kStates) {
    for (const QueryPlan& plan : plans) {
      SCOPED_TRACE(StringFormat("%s bw=%.2f mem=%.2f", plan.name.c_str(),
                                state.bandwidth, state.memory));
      Result<QueryResult> expected = oracle.Execute(plan);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      std::optional<std::string> agreed_choice;
      for (int threads : {1, 2, 8}) {
        cost::CostFeedback::Global().Reset();
        cost::CostFeedback::Global().ForceStateForTest(state.bandwidth,
                                                       state.memory);
        StrategyOptions options;
        options.num_threads = threads;
        std::unique_ptr<SwoleStrategy> engine =
            MakeSwoleStrategy(micro_->catalog, options);
        Result<QueryResult> actual = engine->Execute(plan);
        ASSERT_TRUE(actual.ok()) << actual.status().ToString();
        if (!agreed_choice.has_value()) {
          agreed_choice = engine->last_decisions().aggregation;
        } else {
          EXPECT_EQ(engine->last_decisions().aggregation, *agreed_choice)
              << "at " << threads << " threads";
        }
        ASSERT_EQ(*actual, *expected)
            << "at " << threads << " threads\nexpected:\n"
            << expected->ToString() << "actual:\n"
            << actual->ToString();
      }
    }
  }
  cost::CostFeedback::Global().Reset();
  cost::SetRefitModeForTest(cost::RefitMode::kOff);
}

TEST_F(SwoleDecisionsTest, ExtremeRefitStatesCanMoveTheDecision) {
  // The refit has to be able to change something, or the re-decision
  // machinery is dead code: an extreme memory penalty pushes a grouped
  // query off its hash-table-hungry choice.
  cost::SetRefitModeForTest(cost::RefitMode::kApply);
  QueryPlan plan = MicroQ2(micro_->c_columns[1], micro_->c_actual[1], 40);

  cost::CostFeedback::Global().ForceStateForTest(1.0, 1.0);
  SwoleDecisions neutral = Decide(micro_->catalog, plan);
  cost::CostFeedback::Global().ForceStateForTest(4.0, 0.25);
  SwoleDecisions cheap_memory = Decide(micro_->catalog, plan);
  cost::CostFeedback::Global().ForceStateForTest(0.25, 4.0);
  SwoleDecisions dear_memory = Decide(micro_->catalog, plan);

  // All three are valid techniques; at least one extreme must diverge from
  // the neutral state for this plan, whose VM/KM margin is thin.
  EXPECT_TRUE(cheap_memory.aggregation != neutral.aggregation ||
              dear_memory.aggregation != neutral.aggregation)
      << "neutral=" << neutral.aggregation
      << " cheap=" << cheap_memory.aggregation
      << " dear=" << dear_memory.aggregation;

  cost::CostFeedback::Global().Reset();
  cost::SetRefitModeForTest(cost::RefitMode::kOff);
}

TEST_F(SwoleDecisionsTest, DecisionsAreStableAcrossRepeatedExecutions) {
  std::unique_ptr<SwoleStrategy> engine = MakeSwoleStrategy(micro_->catalog);
  QueryPlan plan = MicroQ1(false, 50);
  engine->Execute(plan).status().CheckOK();
  SwoleDecisions first = engine->last_decisions();
  engine->Execute(plan).status().CheckOK();
  EXPECT_EQ(engine->last_decisions().aggregation, first.aggregation);
  EXPECT_EQ(engine->last_decisions().rationale, first.rationale);
}

}  // namespace
}  // namespace swole
