// Cross-thread-count determinism: every engine (all four strategies, the
// reference oracle, and the JIT pipeline) must produce bit-identical
// results at 1, 2, and 8 threads, on micro and TPC-H plans. Per-worker
// aggregation states are merged in worker order, so this holds regardless
// of morsel steal order — these tests are the contract.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "codegen/jit.h"
#include "engine/reference_engine.h"
#include "micro/micro.h"
#include "storage/table.h"
#include "strategies/strategy.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace swole {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kDataCentric, StrategyKind::kHybrid, StrategyKind::kRof,
    StrategyKind::kSwole};

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 20'000;
    config.s_small_rows = 50;
    config.s_large_rows = 500;
    config.c_cardinalities = {10, 200};
    config.seed = 99;
    micro_ = MicroData::Generate(config).release();

    tpch::TpchConfig tpch_config;
    tpch_config.scale_factor = 0.002;
    tpch_config.seed = 99;
    tpch_ = tpch::TpchData::Generate(tpch_config).release();
  }
  static void TearDownTestSuite() {
    delete micro_;
    micro_ = nullptr;
    delete tpch_;
    tpch_ = nullptr;
  }

  // Runs `plan` on `kind` at every thread count and checks each result is
  // bit-identical to the single-threaded run (and, transitively, to the
  // reference oracle — the single-thread path is oracle-checked by the
  // existing strategy tests).
  static void CheckThreadCountInvariance(const Catalog& catalog,
                                         const QueryPlan& plan,
                                         StrategyKind kind,
                                         StrategyOptions options = {}) {
    options.num_threads = 1;
    QueryResult baseline =
        MakeStrategy(kind, catalog, options)->Execute(plan).value();
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      Result<QueryResult> result =
          MakeStrategy(kind, catalog, options)->Execute(plan);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(*result, baseline)
          << plan.name << " " << StrategyKindName(kind) << " threads="
          << threads;
    }
  }

  static MicroData* micro_;
  static tpch::TpchData* tpch_;
};

MicroData* ParallelDeterminismTest::micro_ = nullptr;
tpch::TpchData* ParallelDeterminismTest::tpch_ = nullptr;

TEST_F(ParallelDeterminismTest, MicroPlansAllStrategies) {
  std::vector<QueryPlan> plans;
  plans.push_back(MicroQ1(false, 37));
  plans.push_back(MicroQ1(true, 80));
  plans.push_back(MicroQ2(micro_->c_columns[1], micro_->c_actual[1], 45));
  plans.push_back(MicroQ3(true, 50));
  plans.push_back(MicroQ4(true, 60, 40));
  plans.push_back(MicroQ5(false, 50, 50));
  for (const QueryPlan& plan : plans) {
    for (StrategyKind kind : kAllStrategies) {
      CheckThreadCountInvariance(micro_->catalog, plan, kind);
    }
  }
}

TEST_F(ParallelDeterminismTest, MicroSelectivityBoundaries) {
  for (int64_t sel : {0, 100}) {
    for (StrategyKind kind : kAllStrategies) {
      CheckThreadCountInvariance(micro_->catalog, MicroQ1(false, sel), kind);
      CheckThreadCountInvariance(micro_->catalog, MicroQ4(false, sel, 50),
                                 kind);
    }
  }
}

TEST_F(ParallelDeterminismTest, TpchAllQueriesAllStrategies) {
  for (const QueryPlan& plan : tpch::AllQueries(tpch_->catalog)) {
    for (StrategyKind kind : kAllStrategies) {
      CheckThreadCountInvariance(tpch_->catalog, plan, kind);
    }
  }
}

TEST_F(ParallelDeterminismTest, SwoleForcedAggregationTechniques) {
  QueryPlan grouped =
      MicroQ2(micro_->c_columns[0], micro_->c_actual[0], 30);
  for (StrategyOptions::ForceAgg force :
       {StrategyOptions::ForceAgg::kValueMasking,
        StrategyOptions::ForceAgg::kKeyMasking,
        StrategyOptions::ForceAgg::kHybridFallback}) {
    StrategyOptions options;
    options.force_agg = force;
    CheckThreadCountInvariance(micro_->catalog, grouped,
                               StrategyKind::kSwole, options);
  }
}

TEST_F(ParallelDeterminismTest, SwoleForcedEagerAggregation) {
  StrategyOptions options;
  options.force_eager_aggregation = true;
  CheckThreadCountInvariance(micro_->catalog, MicroQ5(false, 50, 50),
                             StrategyKind::kSwole, options);
  CheckThreadCountInvariance(micro_->catalog, MicroQ5(true, 30, 70),
                             StrategyKind::kSwole, options);
}

TEST_F(ParallelDeterminismTest, ReferenceEngineThreadCountInvariant) {
  for (const QueryPlan& plan : tpch::AllQueries(tpch_->catalog)) {
    QueryResult baseline =
        ReferenceEngine(tpch_->catalog, 1).Execute(plan).value();
    for (int threads : kThreadCounts) {
      Result<QueryResult> result =
          ReferenceEngine(tpch_->catalog, threads).Execute(plan);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(*result, baseline) << plan.name << " threads=" << threads;
    }
  }
}

TEST_F(ParallelDeterminismTest, JitKernelsThreadCountInvariant) {
  // One compile per (plan, strategy); Run at every thread count must agree
  // with the single-threaded run and with the reference oracle.
  ReferenceEngine oracle(micro_->catalog);
  struct Case {
    QueryPlan plan;
    StrategyKind kind;
    AggChoice choice;
  };
  std::vector<Case> cases;
  cases.push_back({MicroQ1(false, 37), StrategyKind::kDataCentric,
                   AggChoice::kValueMasking});
  cases.push_back({MicroQ4(true, 60, 40), StrategyKind::kHybrid,
                   AggChoice::kValueMasking});
  cases.push_back({MicroQ4(false, 50, 50), StrategyKind::kSwole,
                   AggChoice::kValueMasking});
  cases.push_back(
      {MicroQ2(micro_->c_columns[0], micro_->c_actual[0], 45),
       StrategyKind::kSwole, AggChoice::kKeyMasking});
  for (const Case& c : cases) {
    QueryResult expected = oracle.Execute(c.plan).value();
    codegen::GeneratorOptions options;
    options.strategy = c.kind;
    options.agg_choice = c.choice;
    Result<std::unique_ptr<codegen::CompiledKernel>> compiled =
        codegen::GenerateAndCompile(c.plan, micro_->catalog, options);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    for (int threads : kThreadCounts) {
      Result<QueryResult> result =
          (*compiled)->Run(micro_->catalog, threads);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(*result, expected)
          << c.plan.name << " " << StrategyKindName(c.kind) << " threads="
          << threads << "\nsource:\n"
          << (*compiled)->kernel().source;
    }
  }
}

}  // namespace
}  // namespace swole
