// Online cost-model refit (cost/feedback.h): the decayed least-squares
// fit, its guard rails, the observe/apply mode gate, and the properties
// the engine integration depends on — bit-identical results in every
// refit mode and deterministic mid-query re-decisions.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/feedback.h"
#include "engine/reference_engine.h"
#include "micro/micro.h"
#include "obs/metrics.h"
#include "strategies/strategy.h"
#include "strategies/swole.h"

namespace swole {
namespace {

using cost::CostFeedback;
using cost::QueryObservation;
using cost::RefitMode;

QueryObservation MakeObservation(double predicted_ns, double elapsed_ns) {
  QueryObservation record;
  record.rows = 1'000'000;
  record.selectivity = 0.5;
  record.predicted_ns = predicted_ns;
  record.elapsed_ns = elapsed_ns;
  return record;
}

class CostFeedbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CostFeedback::Global().Reset();
    cost::SetRefitModeForTest(RefitMode::kApply);
  }
  void TearDown() override {
    CostFeedback::Global().Reset();
    cost::SetRefitModeForTest(RefitMode::kOff);
  }
};

TEST_F(CostFeedbackTest, ModeNames) {
  EXPECT_STREQ(cost::RefitModeName(RefitMode::kOff), "off");
  EXPECT_STREQ(cost::RefitModeName(RefitMode::kObserve), "observe");
  EXPECT_STREQ(cost::RefitModeName(RefitMode::kApply), "apply");

  cost::SetRefitModeForTest(RefitMode::kOff);
  EXPECT_FALSE(cost::RefitEnabled());
  cost::SetRefitModeForTest(RefitMode::kObserve);
  EXPECT_TRUE(cost::RefitEnabled());
  cost::SetRefitModeForTest(RefitMode::kApply);
  EXPECT_TRUE(cost::RefitEnabled());
}

TEST_F(CostFeedbackTest, ConvergesToObservedScale) {
  // Machine consistently 2x slower than the model: the decayed LS estimate
  // is exactly 2.0 from the first sample; the +-25% guard rail walks the
  // applied scale there over a few observations.
  CostFeedback& fb = CostFeedback::Global();
  for (int i = 0; i < 10; ++i) {
    fb.Observe(MakeObservation(1e6, 2e6));
  }
  EXPECT_NEAR(fb.bandwidth_scale(), 2.0, 0.05);

  CostProfile base = CostProfile::Default();
  CostProfile refit = fb.Refitted(base);
  EXPECT_NEAR(refit.read_seq, base.read_seq * fb.bandwidth_scale(), 1e-9);
  EXPECT_NEAR(refit.read_cond, base.read_cond * fb.bandwidth_scale(), 1e-9);
}

TEST_F(CostFeedbackTest, GuardRailCapsRunawayScale) {
  // A 100x mismatch (e.g. a mis-measured first query) must not let the
  // model run away: the absolute rail clamps at kMaxScale.
  CostFeedback& fb = CostFeedback::Global();
  for (int i = 0; i < 50; ++i) {
    fb.Observe(MakeObservation(1e6, 100e6));
  }
  EXPECT_LE(fb.bandwidth_scale(), CostFeedback::kMaxScale + 1e-9);
  for (int i = 0; i < 50; ++i) {
    fb.Observe(MakeObservation(1e6, 1e3));
  }
  EXPECT_GE(fb.bandwidth_scale(), CostFeedback::kMinScale - 1e-9);
}

TEST_F(CostFeedbackTest, StepIsBoundedPerObservation) {
  CostFeedback& fb = CostFeedback::Global();
  fb.Observe(MakeObservation(1e6, 100e6));
  // One observation moves the applied scale at most 25% from 1.0.
  EXPECT_LE(fb.bandwidth_scale(),
            1.0 + CostFeedback::kMaxStepPerObservation + 1e-9);
}

TEST_F(CostFeedbackTest, ObserveModeNeverChangesTheProfile) {
  cost::SetRefitModeForTest(RefitMode::kObserve);
  CostFeedback& fb = CostFeedback::Global();
  for (int i = 0; i < 10; ++i) {
    fb.Observe(MakeObservation(1e6, 4e6));
  }
  CostProfile base = CostProfile::Default();
  CostProfile refit = fb.Refitted(base);
  EXPECT_EQ(refit.read_seq, base.read_seq);
  EXPECT_EQ(refit.read_cond, base.read_cond);
  EXPECT_EQ(refit.ht_lookup_mem, base.ht_lookup_mem);
  // The fit itself still ran — flipping to apply uses it immediately.
  EXPECT_GT(fb.bandwidth_scale(), 1.0);
}

TEST_F(CostFeedbackTest, MinimumSamplesBeforeApplying) {
  CostFeedback& fb = CostFeedback::Global();
  for (int i = 0; i < CostFeedback::kMinSamples - 1; ++i) {
    fb.Observe(MakeObservation(1e6, 2e6));
  }
  CostProfile base = CostProfile::Default();
  EXPECT_EQ(fb.Refitted(base).read_seq, base.read_seq);
  fb.Observe(MakeObservation(1e6, 2e6));
  EXPECT_NE(fb.Refitted(base).read_seq, base.read_seq);
}

TEST_F(CostFeedbackTest, MemoryScaleFitsFromLlcMisses) {
  CostFeedback& fb = CostFeedback::Global();
  QueryObservation record = MakeObservation(1e6, 1e6);
  record.cycles = 1'000'000;
  record.expected_misses_per_tuple = 0.5;
  record.llc_misses = static_cast<int64_t>(record.rows);  // observed 1.0/t
  for (int i = 0; i < 10; ++i) fb.Observe(record);
  EXPECT_NEAR(fb.memory_scale(), 2.0, 0.05);

  CostProfile base = CostProfile::Default();
  CostProfile refit = fb.Refitted(base);
  EXPECT_NEAR(refit.ht_lookup_mem, base.ht_lookup_mem * fb.memory_scale(),
              1e-9);
  EXPECT_NEAR(refit.ht_insert, base.ht_insert * fb.memory_scale(), 1e-9);
}

TEST_F(CostFeedbackTest, InvalidObservationsAreIgnored) {
  CostFeedback& fb = CostFeedback::Global();
  QueryObservation empty;  // all zeros
  fb.Observe(empty);
  QueryObservation no_prediction = MakeObservation(0, 1e6);
  fb.Observe(no_prediction);
  EXPECT_EQ(fb.samples(), 0);
}

TEST_F(CostFeedbackTest, EpochAdvancesOnMaterialMovementOnly) {
  CostFeedback& fb = CostFeedback::Global();
  int64_t epoch0 = fb.epoch();
  fb.Observe(MakeObservation(1e6, 2e6));
  EXPECT_GT(fb.epoch(), epoch0);  // 25% step is material

  // Converged: identical observations stop moving the scale, so the epoch
  // stabilizes and memoized plan analyses stop re-running.
  for (int i = 0; i < 20; ++i) fb.Observe(MakeObservation(1e6, 2e6));
  int64_t converged = fb.epoch();
  for (int i = 0; i < 5; ++i) fb.Observe(MakeObservation(1e6, 2e6));
  EXPECT_EQ(fb.epoch(), converged);
}

TEST_F(CostFeedbackTest, ForceStateClampsAndBumpsEpoch) {
  CostFeedback& fb = CostFeedback::Global();
  int64_t epoch0 = fb.epoch();
  fb.ForceStateForTest(100.0, 0.001);
  EXPECT_EQ(fb.bandwidth_scale(), CostFeedback::kMaxScale);
  EXPECT_EQ(fb.memory_scale(), CostFeedback::kMinScale);
  EXPECT_GT(fb.epoch(), epoch0);
  // Forced state is immediately applicable (samples >= minimum).
  CostProfile base = CostProfile::Default();
  EXPECT_NE(fb.Refitted(base).read_seq, base.read_seq);
}

TEST_F(CostFeedbackTest, NsPerCycleStaysWithinRail) {
  CostFeedback& fb = CostFeedback::Global();
  QueryObservation record = MakeObservation(1e6, 1e6);
  record.cycles = 10;  // absurd elapsed/cycles ratio
  for (int i = 0; i < 5; ++i) fb.Observe(record);
  CostProfile base = CostProfile::Default();
  CostProfile refit = fb.Refitted(base);
  EXPECT_LE(refit.ns_per_cycle, base.ns_per_cycle * 2.0 + 1e-9);
  EXPECT_GE(refit.ns_per_cycle, base.ns_per_cycle * 0.5 - 1e-9);
}

// ---- Engine integration ----

class CostFeedbackEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 40'000;
    config.s_small_rows = 100;
    config.s_large_rows = 4'000;
    config.c_cardinalities = {10, 2'000};
    config.seed = 11;
    micro_ = MicroData::Generate(config).release();
  }
  static void TearDownTestSuite() {
    delete micro_;
    micro_ = nullptr;
  }
  void SetUp() override { CostFeedback::Global().Reset(); }
  void TearDown() override {
    CostFeedback::Global().Reset();
    cost::SetRefitModeForTest(RefitMode::kOff);
  }

  static MicroData* micro_;
};

MicroData* CostFeedbackEngineTest::micro_ = nullptr;

TEST_F(CostFeedbackEngineTest, ResultsBitIdenticalAcrossRefitModes) {
  // The refit invariant: every mode (and any fitted state) produces the
  // same bits — refit redirects work, never results.
  ReferenceEngine oracle(micro_->catalog);
  std::vector<QueryPlan> plans;
  plans.push_back(MicroQ1(false, 50));
  plans.push_back(MicroQ2(micro_->c_columns[0], micro_->c_actual[0], 50));
  plans.push_back(MicroQ4(false, 50, 50));
  plans.push_back(MicroQ5(false, 50, micro_->config.s_small_rows));

  for (const QueryPlan& plan : plans) {
    Result<QueryResult> expected = oracle.Execute(plan);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (RefitMode mode :
         {RefitMode::kOff, RefitMode::kObserve, RefitMode::kApply}) {
      cost::SetRefitModeForTest(mode);
      CostFeedback::Global().Reset();
      if (mode == RefitMode::kApply) {
        // Extreme fitted state, to force decisions to actually differ.
        CostFeedback::Global().ForceStateForTest(4.0, 0.25);
      }
      std::unique_ptr<SwoleStrategy> engine =
          MakeSwoleStrategy(micro_->catalog, {});
      Result<QueryResult> actual = engine->Execute(plan);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ASSERT_EQ(*actual, *expected)
          << "refit mode " << cost::RefitModeName(mode) << " diverges on "
          << plan.name;
    }
  }
}

TEST_F(CostFeedbackEngineTest, EngineRunsFeedObservations) {
  cost::SetRefitModeForTest(RefitMode::kObserve);
  obs::Counter& observations =
      obs::MetricsRegistry::Global().GetCounter("cost.refit.observations");
  int64_t before = observations.value();
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(micro_->catalog, {});
  QueryPlan plan = MicroQ1(false, 50);
  engine->Execute(plan).status().CheckOK();
  EXPECT_GT(observations.value(), before);
  EXPECT_GT(CostFeedback::Global().samples(), 0);
}

TEST_F(CostFeedbackEngineTest, MidQueryReDecisionIsConsidered) {
  cost::SetRefitModeForTest(RefitMode::kApply);
  obs::Counter& considered = obs::MetricsRegistry::Global().GetCounter(
      "cost.redecision.considered");
  int64_t before = considered.value();
  std::unique_ptr<SwoleStrategy> engine =
      MakeSwoleStrategy(micro_->catalog, {});
  // A join query reaches the general-probe re-decision point (bitmaps are
  // built, so observed selectivity is available).
  QueryPlan plan = MicroQ4(false, 50, 50);
  engine->Execute(plan).status().CheckOK();
  EXPECT_GT(considered.value(), before);
}

TEST_F(CostFeedbackEngineTest, ReDecisionIsThreadCountInvariant) {
  // The re-decision consumes bitmap popcounts and seeded-table bytes, both
  // thread-count invariant — so the chosen technique (and the results)
  // must match at every parallelism under a forced refit state.
  cost::SetRefitModeForTest(RefitMode::kApply);
  CostFeedback::Global().ForceStateForTest(0.25, 4.0);
  QueryPlan plan = MicroQ2(micro_->c_columns[0], micro_->c_actual[0], 30);

  std::string first_choice;
  std::optional<QueryResult> first;
  for (int threads : {1, 2, 8}) {
    StrategyOptions options;
    options.num_threads = threads;
    std::unique_ptr<SwoleStrategy> engine =
        MakeSwoleStrategy(micro_->catalog, options);
    Result<QueryResult> result = engine->Execute(plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!first.has_value()) {
      first_choice = engine->last_decisions().aggregation;
      first = std::move(*result);
      continue;
    }
    EXPECT_EQ(engine->last_decisions().aggregation, first_choice)
        << "at " << threads << " threads";
    ASSERT_EQ(*result, *first) << "at " << threads << " threads";
  }
}

}  // namespace
}  // namespace swole
