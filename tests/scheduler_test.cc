// Unit tests for the morsel-driven work-stealing scheduler
// (exec/scheduler.h): full coverage with no overlap at any thread count,
// stealing under skewed morsel costs, degenerate inputs (empty tables,
// single rows, more threads than morsels), environment-variable thread
// resolution, and nested parallel regions running inline.

#include "exec/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace swole::exec {
namespace {

// Sums of row indices over [0, total) for coverage checks.
int64_t RowIndexSum(int64_t total) { return total * (total - 1) / 2; }

TEST(ResolveNumThreadsTest, ExplicitRequestWins) {
  ::setenv("SWOLE_THREADS", "7", 1);
  EXPECT_EQ(ResolveNumThreads(3), 3);
  ::unsetenv("SWOLE_THREADS");
}

TEST(ResolveNumThreadsTest, EnvironmentFallbackAndDefault) {
  ::setenv("SWOLE_THREADS", "5", 1);
  EXPECT_EQ(ResolveNumThreads(0), 5);
  ::unsetenv("SWOLE_THREADS");
  EXPECT_EQ(ResolveNumThreads(0), 1);
  EXPECT_EQ(ResolveNumThreads(-4), 1);
}

TEST(ResolveNumThreadsTest, ClampsToSaneRange) {
  EXPECT_EQ(ResolveNumThreads(100000), 256);
  ::setenv("SWOLE_THREADS", "0", 1);
  EXPECT_EQ(ResolveNumThreads(0), 1);
  ::unsetenv("SWOLE_THREADS");
}

TEST(DefaultMorselSizeTest, TileAndWordAligned) {
  for (int64_t tile : {int64_t{1}, int64_t{7}, int64_t{64}, int64_t{1000},
                       int64_t{1024}, int64_t{4096}}) {
    int64_t morsel = DefaultMorselSize(tile);
    EXPECT_GT(morsel, 0) << "tile " << tile;
    EXPECT_EQ(morsel % tile, 0) << "tile " << tile;
    EXPECT_EQ(morsel % 64, 0) << "tile " << tile;
  }
}

TEST(ParallelMorselsTest, CoversEveryRowExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    for (int64_t total : {int64_t{1}, int64_t{63}, int64_t{64}, int64_t{65},
                          int64_t{1000}, int64_t{4096 * 3 + 17}}) {
      std::atomic<int64_t> rows{0};
      std::atomic<int64_t> index_sum{0};
      MorselStats stats =
          ParallelMorsels(threads, total, /*morsel_size=*/64,
                          [&](int worker, int64_t begin, int64_t end) {
                            EXPECT_GE(worker, 0);
                            EXPECT_LT(worker, threads);
                            EXPECT_LT(begin, end);
                            EXPECT_LE(end, total);
                            rows.fetch_add(end - begin);
                            for (int64_t i = begin; i < end; ++i) {
                              index_sum.fetch_add(i);
                            }
                          });
      EXPECT_EQ(rows.load(), total)
          << "threads " << threads << " total " << total;
      EXPECT_EQ(index_sum.load(), RowIndexSum(total))
          << "threads " << threads << " total " << total;
      EXPECT_EQ(stats.morsels, (total + 63) / 64);
      EXPECT_LE(stats.workers, threads);
    }
  }
}

TEST(ParallelMorselsTest, EmptyInputIsANoOp) {
  int calls = 0;
  MorselStats stats = ParallelMorsels(
      8, /*total_rows=*/0, /*morsel_size=*/64,
      [&](int, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(stats.morsels, 0);
}

TEST(ParallelMorselsTest, SingleRowTable) {
  std::atomic<int64_t> rows{0};
  ParallelMorsels(8, /*total_rows=*/1, /*morsel_size=*/1024,
                  [&](int worker, int64_t begin, int64_t end) {
                    EXPECT_EQ(worker, 0);  // one morsel => caller only
                    rows.fetch_add(end - begin);
                  });
  EXPECT_EQ(rows.load(), 1);
}

TEST(ParallelMorselsTest, MoreThreadsThanMorsels) {
  // 3 morsels, 16 requested threads: participants are capped at 3 and
  // every row is still covered exactly once.
  std::atomic<int64_t> rows{0};
  MorselStats stats = ParallelMorsels(
      16, /*total_rows=*/192, /*morsel_size=*/64,
      [&](int worker, int64_t begin, int64_t end) {
        EXPECT_LT(worker, 3);
        rows.fetch_add(end - begin);
      });
  EXPECT_EQ(rows.load(), 192);
  EXPECT_LE(stats.workers, 3);
}

TEST(ParallelMorselsTest, SingleThreadRunsInAscendingOrder) {
  std::vector<int64_t> begins;
  ParallelMorsels(1, /*total_rows=*/640, /*morsel_size=*/64,
                  [&](int worker, int64_t begin, int64_t) {
                    EXPECT_EQ(worker, 0);
                    begins.push_back(begin);
                  });
  ASSERT_EQ(begins.size(), 10u);
  for (size_t i = 1; i < begins.size(); ++i) {
    EXPECT_LT(begins[i - 1], begins[i]);
  }
}

TEST(ParallelMorselsTest, StealingDrainsASlowParticipantsQueue) {
  // Two participants, many morsels. Participant 0's first morsel sleeps;
  // the other participant should steal from its run. With a real second
  // thread this exercises the steal path; on a single-core machine the
  // scheduler still guarantees coverage.
  std::atomic<int64_t> rows{0};
  std::atomic<bool> first{true};
  MorselStats stats = ParallelMorsels(
      2, /*total_rows=*/64 * 40, /*morsel_size=*/64,
      [&](int worker, int64_t begin, int64_t end) {
        if (worker == 0 && first.exchange(false)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
        }
        rows.fetch_add(end - begin);
      });
  EXPECT_EQ(rows.load(), 64 * 40);
  EXPECT_EQ(stats.morsels, 40);
  // steals is machine-dependent (0 on a single core with a fast worker 0),
  // but never negative and never more than the morsel count.
  EXPECT_GE(stats.steals, 0);
  EXPECT_LE(stats.steals, stats.morsels);
}

TEST(ParallelMorselsTest, NestedRegionsRunInlineOnTheWorker) {
  // A morsel function that itself calls ParallelMorsels: the inner call
  // must run inline on the same worker (no pool deadlock, no new worker
  // ids), and both levels must cover their rows.
  std::atomic<int64_t> outer_rows{0};
  std::atomic<int64_t> inner_rows{0};
  ParallelMorsels(
      4, /*total_rows=*/64 * 8, /*morsel_size=*/64,
      [&](int outer_worker, int64_t begin, int64_t end) {
        outer_rows.fetch_add(end - begin);
        ParallelMorsels(4, /*total_rows=*/128, /*morsel_size=*/64,
                        [&](int inner_worker, int64_t b, int64_t e) {
                          EXPECT_EQ(inner_worker, 0);  // inline
                          (void)outer_worker;
                          inner_rows.fetch_add(e - b);
                        });
      });
  EXPECT_EQ(outer_rows.load(), 64 * 8);
  EXPECT_EQ(inner_rows.load(), 128 * 8);
}

TEST(ParallelMorselsTest, WorkerZeroIsTheCallingThread) {
  // Worker id 0 runs on the calling thread and only there; other worker
  // ids run on pool threads. (Worker 0 may legitimately process zero
  // morsels if the pool steals its whole queue first, so the invariant is
  // per-invocation, not "worker 0 ran".)
  std::thread::id caller = std::this_thread::get_id();
  std::mutex mu;
  ParallelMorsels(4, /*total_rows=*/64 * 16, /*morsel_size=*/64,
                  [&](int worker, int64_t, int64_t) {
                    std::lock_guard<std::mutex> lock(mu);
                    if (worker == 0) {
                      EXPECT_EQ(std::this_thread::get_id(), caller);
                    } else {
                      EXPECT_NE(std::this_thread::get_id(), caller);
                    }
                  });
}

}  // namespace
}  // namespace swole::exec
