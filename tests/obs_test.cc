// Observability subsystem tests (label: obs): span-tree shape determinism
// across thread counts for every strategy and the JIT, zero-allocation
// disabled-trace hot path, clean perf-counter fallback, registry handle
// semantics and thread safety (the TSan preset runs this binary), the
// JitStats-on-registry migration, and SWOLE_LOG_LEVEL parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/status.h"
#include "exec/query_context.h"
#include "micro/micro.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "strategies/strategy.h"

// Counting global allocator: the disabled-trace hot path must allocate
// nothing, and only an operator-new override can prove that. Counting is
// off except inside the scoped window the test opens.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<int64_t> g_alloc_count{0};

void* CountingAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountingAlloc(size); }
void* operator new[](std::size_t size) { return CountingAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace swole {
namespace {

using codegen::ExecutionReport;
using codegen::GeneratorOptions;
using codegen::JitOptions;
using exec::QueryContext;

constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kDataCentric, StrategyKind::kHybrid, StrategyKind::kRof,
    StrategyKind::kSwole};

constexpr int kThreadCounts[] = {1, 2, 8};

// Sets an environment variable for the lifetime of the scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

class ObsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 50'001;
    config.s_small_rows = 200;
    config.s_large_rows = 4'000;
    config.c_cardinalities = {10, 1'000};
    config.seed = 17;
    micro_ = MicroData::Generate(config).release();
  }
  static void TearDownTestSuite() {
    delete micro_;
    micro_ = nullptr;
  }

  void SetUp() override { FaultInjector::Global().ClearAll(); }
  void TearDown() override { FaultInjector::Global().ClearAll(); }

  static QueryPlan ScalarPlan() { return MicroQ1(/*division=*/false, 50); }
  static QueryPlan GroupedPlan() {
    return MicroQ2(micro_->c_columns[1], micro_->c_actual[1], /*sel=*/50);
  }
  static QueryPlan JoinPlan() {
    return MicroQ4(/*large_s=*/false, /*sel1=*/50, /*sel2=*/50);
  }
  static QueryPlan GroupjoinPlan() {
    return MicroQ5(/*large_s=*/false, /*sel=*/50,
                   micro_->config.s_small_rows);
  }

  static MicroData* micro_;
};

MicroData* ObsTest::micro_ = nullptr;

// ---- Span-tree shape determinism ----

// Spans are opened only by the driving thread, so the tree SHAPE must be
// identical at every thread count, for every strategy and plan family;
// timings and morsel/steal attribute values legitimately differ.
TEST_F(ObsTest, SpanTreeShapeDeterministicAcrossThreadCounts) {
  const QueryPlan plans[] = {ScalarPlan(), GroupedPlan(), JoinPlan(),
                             GroupjoinPlan()};
  for (StrategyKind kind : kAllStrategies) {
    for (const QueryPlan& plan : plans) {
      std::string baseline;
      for (int threads : kThreadCounts) {
        obs::QueryTrace trace;
        StrategyOptions options;
        options.num_threads = threads;
        options.trace = &trace;
        std::unique_ptr<Strategy> engine =
            MakeStrategy(kind, micro_->catalog, options);
        Result<QueryResult> result = engine->Execute(plan);
        ASSERT_TRUE(result.ok())
            << engine->name() << "/" << plan.name << ": "
            << result.status().ToString();
        std::string shape = trace.ShapeString();
        EXPECT_NE(shape.find("query("), std::string::npos) << shape;
        if (baseline.empty()) {
          baseline = shape;
        } else {
          EXPECT_EQ(shape, baseline)
              << engine->name() << "/" << plan.name << " at " << threads
              << " threads";
        }
      }
    }
  }
}

TEST_F(ObsTest, JitSpanTreeShapeDeterministicAcrossThreadCounts) {
  const QueryPlan plan = ScalarPlan();
  std::string baseline;
  for (int threads : kThreadCounts) {
    obs::QueryTrace trace;
    GeneratorOptions gen_options;
    gen_options.strategy = StrategyKind::kSwole;
    gen_options.num_threads = threads;
    gen_options.trace = &trace;
    ExecutionReport report;
    Result<QueryResult> result = codegen::ExecuteWithFallback(
        plan, micro_->catalog, gen_options, JitOptions{}, &report);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string shape = trace.ShapeString();
    if (baseline.empty()) {
      baseline = shape;
    } else {
      EXPECT_EQ(shape, baseline) << "at " << threads << " threads";
    }
    if (report.used_jit) {
      EXPECT_NE(shape.find("jit_kernel(build,scan,merge,finish)"),
                std::string::npos)
          << shape;
    }
  }
}

// ---- Trace content ----

TEST_F(ObsTest, TraceCarriesMorselRollupsAndMemoryPeaks) {
  QueryContext ctx;
  obs::QueryTrace trace;
  StrategyOptions options;
  options.num_threads = 2;
  options.query_ctx = &ctx;
  options.trace = &trace;
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kSwole, micro_->catalog, options);
  ASSERT_TRUE(engine->Execute(GroupedPlan()).ok());

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"morsels\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"workers\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"steals\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mem.peak_bytes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mem.site.group_table\""), std::string::npos) << json;

  const std::string text = trace.ToText();
  EXPECT_NE(text.find("query"), std::string::npos) << text;
  EXPECT_NE(text.find("swole"), std::string::npos) << text;
  EXPECT_NE(text.find("actual="), std::string::npos) << text;
}

TEST_F(ObsTest, TraceRecordsCostModelDecisionInputs) {
  obs::QueryTrace trace;
  StrategyOptions options;
  options.trace = &trace;
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kSwole, micro_->catalog, options);
  ASSERT_TRUE(engine->Execute(GroupedPlan()).ok());
  const std::string json = trace.ToJson();
  // The swole span carries the chosen technique and the candidate costs it
  // was chosen on (DescribeAggDecision's sigma/cols/ht inputs).
  EXPECT_NE(json.find("\"agg\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cost.agg\""), std::string::npos) << json;
  EXPECT_NE(json.find("sigma="), std::string::npos) << json;
}

TEST(QueryTraceTest, RendersTextJsonAndShape) {
  obs::QueryTrace trace;
  {
    obs::SpanScope outer(&trace, "swole");
    outer.Attr("threads", int64_t{2});
    { obs::SpanScope inner(&trace, "build"); }
    { obs::SpanScope inner(&trace, "probe"); }
  }
  EXPECT_EQ(trace.ShapeString(), "query(swole(build,probe))");
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("threads=2"), std::string::npos) << text;
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"build\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"attrs\":{\"threads\":\"2\"}"), std::string::npos)
      << json;
}

TEST(QueryTraceTest, EndClosesDanglingChildren) {
  obs::QueryTrace trace;
  obs::QueryTrace::Span* outer = trace.Begin("outer");
  trace.Begin("inner");  // left open, as after an exception unwind
  trace.End(outer);
  EXPECT_EQ(trace.current(), trace.root());
  EXPECT_GE(outer->duration_ns, 0);
  EXPECT_GE(outer->children[0]->duration_ns, 0);
}

// ---- Disabled-trace hot path ----

TEST(QueryTraceTest, NullTraceSpanScopeDoesZeroAllocations) {
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  {
    obs::SpanScope engine(nullptr, "swole");
    engine.Attr("threads", int64_t{8});
    {
      obs::SpanScope phase(nullptr, "probe");
      phase.Attr("morsels", int64_t{1024});
      phase.Attr("steals", int64_t{3});
    }
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
}

// ---- Metrics registry ----

TEST(MetricsRegistryTest, HandlesAreStableAndCount) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& a = reg.GetCounter("obs_test.stable");
  obs::Counter& b = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Add();
  a.Add(41);
  EXPECT_EQ(b.value(), 42);

  obs::Gauge& gauge = reg.GetGauge("obs_test.gauge");
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);

  obs::Histogram& hist = reg.GetHistogram("obs_test.hist");
  hist.Reset();
  hist.Record(0);
  hist.Record(100);
  hist.Record(5000);
  EXPECT_EQ(hist.count(), 3);
  EXPECT_EQ(hist.sum(), 5100);
  EXPECT_EQ(hist.max(), 5000);

  const std::string dump = reg.DumpText();
  EXPECT_NE(dump.find("counter obs_test.stable 42"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("gauge obs_test.gauge 7"), std::string::npos) << dump;
  EXPECT_NE(dump.find("histogram obs_test.hist"), std::string::npos) << dump;

  const std::string compact = reg.DumpCompactNonZero();
  EXPECT_NE(compact.find("obs_test.stable=42"), std::string::npos) << compact;
}

// The TSan preset runs this: registration races, hot-path increments from
// many threads, and concurrent dumps must all be clean.
TEST(MetricsRegistryTest, ConcurrentRegistrationAndCountingIsSafe) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_test.shared").Reset();
  reg.GetHistogram("obs_test.shared_hist").Reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      obs::Counter& shared = reg.GetCounter("obs_test.shared");
      obs::Histogram& hist = reg.GetHistogram("obs_test.shared_hist");
      for (int i = 0; i < kIters; ++i) {
        shared.Add(1);
        hist.Record(i);
        if (i % 4096 == 0) {
          reg.GetCounter("obs_test.per_thread." + std::to_string(t)).Add(1);
          std::string dump = reg.DumpCompactNonZero();
          EXPECT_FALSE(dump.empty());
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("obs_test.shared").value(),
            int64_t{kThreads} * kIters);
  EXPECT_EQ(reg.GetHistogram("obs_test.shared_hist").count(),
            int64_t{kThreads} * kIters);
}

TEST_F(ObsTest, ConcurrentTracedQueriesAreSafe) {
  const QueryPlan plan = GroupedPlan();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      obs::QueryTrace trace;
      StrategyOptions options;
      options.num_threads = 2;
      options.trace = &trace;
      std::unique_ptr<Strategy> engine =
          MakeStrategy(StrategyKind::kSwole, micro_->catalog, options);
      Result<QueryResult> result = engine->Execute(plan);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_NE(trace.ShapeString().find("swole"), std::string::npos);
    });
  }
  for (std::thread& th : threads) th.join();
}

TEST_F(ObsTest, EngineExecutionBumpsStrategyCounters) {
  obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("queries.swole");
  obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("query.latency_us.swole");
  const int64_t queries_before = queries.value();
  const int64_t latency_before = latency.count();
  std::unique_ptr<Strategy> engine =
      MakeStrategy(StrategyKind::kSwole, micro_->catalog, {});
  ASSERT_TRUE(engine->Execute(ScalarPlan()).ok());
  EXPECT_EQ(queries.value(), queries_before + 1);
  EXPECT_EQ(latency.count(), latency_before + 1);

  obs::Counter& runs =
      obs::MetricsRegistry::Global().GetCounter("scheduler.runs");
  EXPECT_GT(runs.value(), 0);
}

// ---- JitStats migration ----

TEST(JitStatsTest, BackedByRegistryCounters) {
  codegen::JitStats& stats = codegen::GlobalJitStats();
  obs::Counter& compiles =
      obs::MetricsRegistry::Global().GetCounter("jit.compiles");
  EXPECT_EQ(&stats.compiles, &compiles);
  const int64_t before = stats.snapshot().compiles;
  compiles.Add(3);
  EXPECT_EQ(stats.snapshot().compiles, before + 3);
  compiles.Add(-3);  // restore: other tests assert on deltas
  EXPECT_EQ(stats.snapshot().compiles, before);
  // Snapshot's rendering is unchanged by the migration.
  EXPECT_NE(stats.snapshot().ToString().find("compiles="),
            std::string::npos);
}

// ---- Hardware counters ----

TEST(PerfCountersTest, InjectedFailureFallsBackCleanly) {
  FaultInjector::Global().SetFault("perf_open", 1.0);
  obs::Counter& failures =
      obs::MetricsRegistry::Global().GetCounter("perf.open_failures");
  const int64_t before = failures.value();
  std::string error;
  std::unique_ptr<obs::PerfCounterSet> set =
      obs::PerfCounterSet::TryCreate(&error);
  EXPECT_EQ(set, nullptr);
  EXPECT_NE(error.find("perf_event_open"), std::string::npos) << error;
  EXPECT_EQ(failures.value(), before + 1);
  FaultInjector::Global().ClearAll();
}

TEST(PerfCountersTest, UnavailableCountersReportNotCrash) {
  // In containers/CI, perf_event_open commonly fails with EACCES or ENOSYS;
  // either way the wrapper must return a reason, never crash, and the
  // invalid reading must render as "unavailable".
  std::string error;
  std::unique_ptr<obs::PerfCounterSet> set =
      obs::PerfCounterSet::TryCreate(&error);
  if (set == nullptr) {
    EXPECT_FALSE(error.empty());
    obs::HwCounts counts;
    EXPECT_EQ(counts.ToString(), "unavailable");
  } else {
    set->Start();
    volatile int64_t sink = 0;
    for (int i = 0; i < 1'000'000; ++i) sink += i;
    (void)sink;
    set->Stop();
    obs::HwCounts counts = set->Read();
    if (counts.valid) {
      EXPECT_GT(counts.instructions, 0);
      EXPECT_NE(counts.ToString().find("instructions="), std::string::npos);
    } else {
      EXPECT_EQ(counts.ToString(), "unavailable");
    }
  }
}

// ---- SWOLE_LOG_LEVEL ----

TEST(LogLevelTest, ParsesNamesAndDigits) {
  LogLevel out;
  EXPECT_TRUE(ParseLogLevel("debug", &out));
  EXPECT_EQ(out, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("Info", &out));
  EXPECT_EQ(out, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("WARN", &out));
  EXPECT_EQ(out, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warning", &out));
  EXPECT_EQ(out, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &out));
  EXPECT_EQ(out, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("0", &out));
  EXPECT_EQ(out, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("3", &out));
  EXPECT_EQ(out, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("", &out));
  EXPECT_FALSE(ParseLogLevel("banana", &out));
  EXPECT_FALSE(ParseLogLevel("4", &out));
  EXPECT_FALSE(ParseLogLevel("11", &out));
}

TEST(LogLevelTest, EnvAppliesAndMalformedIsIgnored) {
  const LogLevel saved = GetLogLevel();
  {
    ScopedEnv env("SWOLE_LOG_LEVEL", "error");
    InitLogLevelFromEnv();
    EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  }
  {
    SetLogLevel(saved);
    ScopedEnv env("SWOLE_LOG_LEVEL", "banana");
    InitLogLevelFromEnv();  // warns, keeps the current level
    EXPECT_EQ(GetLogLevel(), saved);
  }
  SetLogLevel(saved);
}

}  // namespace
}  // namespace swole
