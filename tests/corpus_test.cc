// Startup kernel-corpus precompilation (codegen/corpus.h): the query
// registry, descriptor parsing, catalog gating, cache warm-up through the
// content-addressed kernel cache, and the warm-hit accounting that makes
// the corpus's effectiveness observable (jit.corpus.*).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "codegen/corpus.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "engine/reference_engine.h"
#include "micro/micro.h"
#include "obs/metrics.h"

namespace swole {
namespace {

using codegen::AutoCorpus;
using codegen::CorpusEntry;
using codegen::CorpusReport;
using codegen::ExecutionReport;
using codegen::GeneratorOptions;
using codegen::JitOptions;
using codegen::KernelCache;

// Sets an environment variable for the lifetime of the scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

class CorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 10'000;
    config.s_small_rows = 50;
    config.s_large_rows = 500;
    config.c_cardinalities = {10, 200};
    config.seed = 7;
    data_ = MicroData::Generate(config).release();

    std::string tmpl = "/tmp/swole_corpus_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    descriptor_dir_ = new std::string(tmpl);
  }
  static void TearDownTestSuite() {
    // Best-effort cleanup of the descriptor files.
    ::system(("rm -rf " + *descriptor_dir_).c_str());
    delete descriptor_dir_;
    descriptor_dir_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    KernelCache::Global().Clear();
    codegen::ResetCorpusKeysForTest();
  }
  void TearDown() override { codegen::ResetCorpusKeysForTest(); }

  static std::string WriteDescriptor(const std::string& name,
                                     const std::string& body) {
    std::string path = *descriptor_dir_ + "/" + name;
    std::ofstream out(path);
    out << body;
    return path;
  }

  // Cheap compiles: corpus accounting is flag-agnostic, so the tests skip
  // the -O3 rung. The same options must flow to ExecuteWithFallback — the
  // cache key covers the flag configuration.
  static JitOptions FastJit() {
    JitOptions jit;
    jit.extra_flags = "-O1";
    jit.degrade_flags.clear();
    return jit;
  }

  static std::vector<CorpusEntry> Pick(const std::vector<std::string>& names) {
    std::vector<CorpusEntry> all = AutoCorpus(data_->catalog);
    std::vector<CorpusEntry> picked;
    for (CorpusEntry& entry : all) {
      for (const std::string& name : names) {
        if (entry.name.rfind(name, 0) == 0) picked.push_back(std::move(entry));
      }
    }
    return picked;
  }

  static MicroData* data_;
  static std::string* descriptor_dir_;
};

MicroData* CorpusTest::data_ = nullptr;
std::string* CorpusTest::descriptor_dir_ = nullptr;

TEST_F(CorpusTest, RegistryNamesAreStable) {
  std::vector<std::string> names = codegen::CorpusQueryNames();
  for (const char* expected :
       {"tpch.q1", "tpch.q6", "micro.q1", "micro.q4_small", "micro.q5"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST_F(CorpusTest, AutoCorpusGatesOnCatalogTables) {
  // The micro catalog has no TPC-H tables: only micro.* queries qualify.
  std::vector<CorpusEntry> entries = AutoCorpus(data_->catalog);
  EXPECT_FALSE(entries.empty());
  for (const CorpusEntry& entry : entries) {
    EXPECT_EQ(entry.name.rfind("micro.", 0), 0u) << entry.name;
    EXPECT_EQ(entry.gen.strategy, StrategyKind::kSwole);
  }
  // And an empty catalog qualifies nothing.
  Catalog empty;
  EXPECT_TRUE(AutoCorpus(empty).empty());
}

TEST_F(CorpusTest, DescriptorParsesEntriesAndStrategies) {
  std::string path = WriteDescriptor(
      "good.json",
      "{ \"entries\": [\n"
      "  { \"query\": \"micro.q1\" },\n"
      "  { \"query\": \"micro.q3\", \"strategy\": \"data-centric\" }\n"
      "] }\n");
  Result<std::vector<CorpusEntry>> entries =
      codegen::LoadCorpusFile(path, data_->catalog);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].gen.strategy, StrategyKind::kSwole);
  EXPECT_EQ((*entries)[1].gen.strategy, StrategyKind::kDataCentric);
}

TEST_F(CorpusTest, DescriptorErrorsAreStructured) {
  struct Case {
    const char* name;
    const char* body;
  };
  const Case kBad[] = {
      {"unknown_query.json", "{\"entries\":[{\"query\":\"tpch.q99\"}]}"},
      {"unknown_key.json",
       "{\"entries\":[{\"query\":\"micro.q1\",\"threads\":\"4\"}]}"},
      {"unknown_strategy.json",
       "{\"entries\":[{\"query\":\"micro.q1\",\"strategy\":\"volcano\"}]}"},
      {"no_entries.json", "{\"queries\":[]}"},
      {"trailing.json", "{\"entries\":[{\"query\":\"micro.q1\"}]} extra"},
      {"not_json.json", "corpus: [micro.q1]"},
  };
  for (const Case& c : kBad) {
    SCOPED_TRACE(c.name);
    std::string path = WriteDescriptor(c.name, c.body);
    EXPECT_FALSE(codegen::LoadCorpusFile(path, data_->catalog).ok());
  }
  EXPECT_FALSE(
      codegen::LoadCorpusFile("/nonexistent/corpus.json", data_->catalog)
          .ok());
}

TEST_F(CorpusTest, DescriptorSkipsEntriesWithMissingTables) {
  // tpch.q1 is a valid registered name; its tables just aren't loaded
  // here. A shared descriptor must not fail the whole corpus over it.
  std::string path = WriteDescriptor(
      "partial.json",
      "{\"entries\":[{\"query\":\"micro.q1\"},{\"query\":\"tpch.q1\"}]}");
  Result<std::vector<CorpusEntry>> entries =
      codegen::LoadCorpusFile(path, data_->catalog);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name.rfind("micro.q1", 0), 0u);
}

TEST_F(CorpusTest, PrecompileCompilesOnceThenServesFromCache) {
  std::vector<CorpusEntry> entries = Pick({"micro.q1", "micro.q3"});
  ASSERT_EQ(entries.size(), 2u);

  CorpusReport first = codegen::PrecompileCorpus(entries, data_->catalog,
                                                 FastJit());
  EXPECT_EQ(first.entries, 2);
  EXPECT_EQ(first.compiled, 2);
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_EQ(first.unsupported, 0);
  EXPECT_EQ(first.failures, 0);

  // A second warm-up (e.g. a config reload) finds everything cached.
  CorpusReport second = codegen::PrecompileCorpus(entries, data_->catalog,
                                                  FastJit());
  EXPECT_EQ(second.compiled, 0);
  EXPECT_EQ(second.cache_hits, 2);
  EXPECT_EQ(second.failures, 0);
}

TEST_F(CorpusTest, WarmHitAccountingThroughExecuteWithFallback) {
  std::vector<CorpusEntry> entries = Pick({"micro.q1"});
  ASSERT_EQ(entries.size(), 1u);
  CorpusReport report =
      codegen::PrecompileCorpus(entries, data_->catalog, FastJit());
  ASSERT_EQ(report.compiled + report.cache_hits, 1);

  obs::Counter& warm =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.warm_hits");
  obs::Counter& cold =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.cold_misses");

  // The corpus query's first client is served from the warm cache.
  int64_t warm_before = warm.value();
  const QueryPlan& plan = entries[0].plan;
  ExecutionReport exec_report;
  Result<QueryResult> result = codegen::ExecuteWithFallback(
      plan, data_->catalog, entries[0].gen, FastJit(), &exec_report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(exec_report.used_jit);
  EXPECT_TRUE(exec_report.cache_hit);
  EXPECT_EQ(warm.value() - warm_before, 1);

  ReferenceEngine oracle(data_->catalog);
  EXPECT_EQ(*result, *oracle.Execute(plan));

  // Losing the cache under a registered key is a cold miss — the signal
  // that the corpus promised warmth it no longer delivers.
  KernelCache::Global().Clear();
  int64_t cold_before = cold.value();
  result = codegen::ExecuteWithFallback(plan, data_->catalog, entries[0].gen,
                                        FastJit(), &exec_report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(cold.value() - cold_before, 1);
}

TEST_F(CorpusTest, LookupAccountingIsInertWithoutACorpus) {
  // No corpus registered: cache consults must not touch jit.corpus.*.
  obs::Counter& warm =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.warm_hits");
  obs::Counter& cold =
      obs::MetricsRegistry::Global().GetCounter("jit.corpus.cold_misses");
  int64_t warm_before = warm.value();
  int64_t cold_before = cold.value();
  QueryPlan plan = MicroQ1(false, 41);
  for (int i = 0; i < 2; ++i) {
    Result<QueryResult> result = codegen::ExecuteWithFallback(
        plan, data_->catalog, {}, FastJit());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(warm.value(), warm_before);
  EXPECT_EQ(cold.value(), cold_before);
}

TEST_F(CorpusTest, WarmCorpusFromEnvPathways) {
  {
    ScopedEnv env("SWOLE_WARM_CORPUS", "");
    CorpusReport report = codegen::WarmCorpusFromEnv(data_->catalog);
    EXPECT_EQ(report.entries, 0);
  }
  {
    // A broken descriptor path warns and serves cold — never fatal.
    ScopedEnv env("SWOLE_WARM_CORPUS", "/nonexistent/corpus.json");
    CorpusReport report = codegen::WarmCorpusFromEnv(data_->catalog);
    EXPECT_EQ(report.entries, 0);
  }
  {
    std::string path = WriteDescriptor(
        "env.json", "{\"entries\":[{\"query\":\"micro.q1\"}]}");
    ScopedEnv env("SWOLE_WARM_CORPUS", path);
    CorpusReport report =
        codegen::WarmCorpusFromEnv(data_->catalog, FastJit());
    EXPECT_EQ(report.entries, 1);
    EXPECT_EQ(report.failures, 0);
    EXPECT_EQ(report.compiled + report.cache_hits, 1);
  }
}

TEST_F(CorpusTest, WarmCorpusAutoPrecompilesEverythingEligible) {
  ScopedEnv env("SWOLE_WARM_CORPUS", "auto");
  CorpusReport report = codegen::WarmCorpusFromEnv(data_->catalog, FastJit());
  EXPECT_EQ(static_cast<size_t>(report.entries),
            AutoCorpus(data_->catalog).size());
  EXPECT_EQ(report.failures, 0);
  // Every supported entry is now warm: a rerun compiles nothing.
  CorpusReport rerun = codegen::WarmCorpusFromEnv(data_->catalog, FastJit());
  EXPECT_EQ(rerun.compiled, 0);
  EXPECT_EQ(rerun.cache_hits, report.compiled + report.cache_hits);
}

}  // namespace
}  // namespace swole
