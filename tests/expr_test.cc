// Unit tests for src/expr: AST construction/printing, binding, scalar
// evaluation, and vectorized evaluation (checked against the scalar oracle).

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "expr/expr.h"
#include "expr/scalar_eval.h"
#include "expr/vector_eval.h"
#include "storage/table.h"

namespace swole {
namespace {

// A small table with assorted column types for expression tests.
class ExprTestFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("t");
    Rng rng(17);

    auto x = std::make_unique<Column>("x", ColumnType::Int(PhysicalType::kInt8));
    auto y = std::make_unique<Column>("y", ColumnType::Int(PhysicalType::kInt16));
    auto a = std::make_unique<Column>("a", ColumnType::Int(PhysicalType::kInt32));
    auto b = std::make_unique<Column>("b", ColumnType::Int(PhysicalType::kInt64));
    auto d = std::make_unique<Column>("d", ColumnType::Date());

    dict_ = std::make_shared<Dictionary>(Dictionary::FromValues(
        {"PROMO ANODIZED", "PROMO PLATED", "STANDARD BRUSHED", "ECONOMY"}));
    auto s = std::make_unique<Column>("s", ColumnType::String());
    s->set_dictionary(dict_);

    for (int64_t i = 0; i < kRows; ++i) {
      x->Append(rng.UniformInt(0, 99));
      y->Append(rng.UniformInt(-300, 300));
      a->Append(rng.UniformInt(0, 100000));
      b->Append(rng.UniformInt(1, 50));  // nonzero: used as divisor
      d->Append(rng.UniformInt(8000, 10000));
      s->Append(rng.UniformInt(0, dict_->size() - 1));
    }
    ASSERT_TRUE(table_->AddColumn(std::move(x)).ok());
    ASSERT_TRUE(table_->AddColumn(std::move(y)).ok());
    ASSERT_TRUE(table_->AddColumn(std::move(a)).ok());
    ASSERT_TRUE(table_->AddColumn(std::move(b)).ok());
    ASSERT_TRUE(table_->AddColumn(std::move(d)).ok());
    ASSERT_TRUE(table_->AddColumn(std::move(s)).ok());
  }

  // Asserts vectorized evaluation matches the scalar oracle on all rows,
  // exercising several tile boundaries.
  void CheckAgainstOracle(const Expr& expr) {
    ASSERT_TRUE(BindExpr(expr, *table_).ok());
    ScalarEvaluator oracle(*table_);
    VectorEvaluator vec(*table_, /*tile_size=*/256);
    std::vector<int64_t> out(256);
    std::vector<uint8_t> cmp(256);
    for (int64_t start = 0; start < kRows; start += 256) {
      int64_t len = std::min<int64_t>(256, kRows - start);
      if (expr.IsBoolean()) {
        vec.EvalBool(expr, start, len, cmp.data());
        for (int64_t j = 0; j < len; ++j) {
          ASSERT_EQ(static_cast<int64_t>(cmp[j]), oracle.Eval(expr, start + j))
              << "row " << start + j << " expr " << expr.ToString();
        }
      }
      vec.EvalNumeric(expr, start, len, out.data());
      for (int64_t j = 0; j < len; ++j) {
        ASSERT_EQ(out[j], oracle.Eval(expr, start + j))
            << "row " << start + j << " expr " << expr.ToString();
      }
    }
  }

  static constexpr int64_t kRows = 1000;  // not a multiple of the tile size
  std::unique_ptr<Table> table_;
  std::shared_ptr<Dictionary> dict_;
};

TEST_F(ExprTestFixture, ToStringRoundTripsShape) {
  ExprPtr e = And(Lt(Col("x"), Lit(13)), Eq(Col("y"), Lit(1)));
  EXPECT_EQ(e->ToString(), "((x < 13) and (y = 1))");
  EXPECT_TRUE(e->IsBoolean());
  ExprPtr m = Mul(Col("a"), Col("b"));
  EXPECT_FALSE(m->IsBoolean());
}

TEST_F(ExprTestFixture, CloneIsDeep) {
  ExprPtr e = And(Lt(Col("x"), Lit(13)), Like("s", "PROMO%"));
  ExprPtr c = e->Clone();
  EXPECT_EQ(e->ToString(), c->ToString());
  e->children[0]->children[1]->literal = 99;  // mutate original's literal
  EXPECT_NE(e->ToString(), c->ToString());
}

TEST_F(ExprTestFixture, CollectColumnRefsDeduplicates) {
  ExprPtr e = Mul(Add(Col("x"), Col("a")), Col("x"));
  std::vector<std::string> refs = CollectColumnRefs(*e);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], "x");
  EXPECT_EQ(refs[1], "a");
}

TEST_F(ExprTestFixture, SplitConjunctsFlattens) {
  ExprPtr e = And(And(Lt(Col("x"), Lit(5)), Gt(Col("y"), Lit(0))),
                  Eq(Col("a"), Lit(7)));
  std::vector<const Expr*> conjuncts = SplitConjuncts(*e);
  ASSERT_EQ(conjuncts.size(), 3u);
  // An OR is a single conjunct.
  ExprPtr f = Or(Lt(Col("x"), Lit(5)), Gt(Col("y"), Lit(0)));
  EXPECT_EQ(SplitConjuncts(*f).size(), 1u);
}

TEST_F(ExprTestFixture, BindRejectsUnknownColumn) {
  ExprPtr e = Lt(Col("nope"), Lit(1));
  EXPECT_EQ(BindExpr(*e, *table_).code(), StatusCode::kNotFound);
}

TEST_F(ExprTestFixture, BindRejectsLogicalOverNumeric) {
  ExprPtr e = And(Col("x"), Lit(1));
  EXPECT_EQ(BindExpr(*e, *table_).code(), StatusCode::kTypeError);
}

TEST_F(ExprTestFixture, BindRejectsLikeOnIntColumn) {
  ExprPtr e = Like("x", "foo%");
  EXPECT_EQ(BindExpr(*e, *table_).code(), StatusCode::kTypeError);
}

TEST_F(ExprTestFixture, BindAcceptsWellFormed) {
  ExprPtr e = And(Between(Col("d"), 8100, 9000),
                  Or(Like("s", "PROMO%"), InList(Col("x"), {1, 2, 3})));
  EXPECT_TRUE(BindExpr(*e, *table_).ok());
}

TEST_F(ExprTestFixture, ComparisonColVsLit) {
  CheckAgainstOracle(*Lt(Col("x"), Lit(13)));
  CheckAgainstOracle(*Ge(Col("y"), Lit(0)));
  CheckAgainstOracle(*Ne(Col("a"), Lit(500)));
}

TEST_F(ExprTestFixture, ComparisonLitVsCol) {
  CheckAgainstOracle(*Lt(Lit(50), Col("x")));   // x > 50
  CheckAgainstOracle(*Eq(Lit(10), Col("b")));
}

TEST_F(ExprTestFixture, ComparisonLiteralOutsidePhysicalRange) {
  // x is int8 (0..99); literal 200 exceeds int8: must still be correct
  // because comparisons are performed widened.
  CheckAgainstOracle(*Lt(Col("x"), Lit(200)));   // always true
  CheckAgainstOracle(*Gt(Col("x"), Lit(-500)));  // always true
  CheckAgainstOracle(*Lt(Col("x"), Lit(-1)));    // always false
}

TEST_F(ExprTestFixture, ComparisonColVsColSameType) {
  // d vs d (same int32 physical type) via a shifted copy: compare d < a is
  // mixed-type and takes the widened path; x < b is also mixed.
  CheckAgainstOracle(*Lt(Col("d"), Col("a")));
  CheckAgainstOracle(*Lt(Col("x"), Col("b")));
}

TEST_F(ExprTestFixture, LogicalOperators) {
  CheckAgainstOracle(*And(Lt(Col("x"), Lit(50)), Gt(Col("y"), Lit(0))));
  CheckAgainstOracle(*Or(Lt(Col("x"), Lit(5)), Gt(Col("y"), Lit(295))));
  CheckAgainstOracle(*Not(Lt(Col("x"), Lit(50))));
  CheckAgainstOracle(
      *And(And(Lt(Col("x"), Lit(80)), Gt(Col("x"), Lit(10))),
           Or(Eq(Col("b"), Lit(3)), Eq(Col("b"), Lit(4)))));
}

TEST_F(ExprTestFixture, BetweenIsInclusive) {
  CheckAgainstOracle(*Between(Col("x"), 10, 20));
}

TEST_F(ExprTestFixture, LikeOnDictionaryColumn) {
  CheckAgainstOracle(*Like("s", "PROMO%"));
  CheckAgainstOracle(*NotLike("s", "%BRUSHED"));
  CheckAgainstOracle(*Like("s", "%AN%"));
}

TEST_F(ExprTestFixture, InList) {
  CheckAgainstOracle(*InList(Col("x"), {1, 7, 42}));
  CheckAgainstOracle(*InList(Col("b"), {3}));
}

TEST_F(ExprTestFixture, Arithmetic) {
  CheckAgainstOracle(*Mul(Col("a"), Col("b")));
  CheckAgainstOracle(*Add(Col("x"), Mul(Col("y"), Lit(3))));
  CheckAgainstOracle(*Sub(Lit(100), Col("x")));
  CheckAgainstOracle(*Div(Col("a"), Col("b")));  // b >= 1
}

TEST_F(ExprTestFixture, BooleanAsNumericMask) {
  // (a*b) * (x < 13): the value-masking expression shape.
  CheckAgainstOracle(
      *Mul(Mul(Col("a"), Col("b")), Lt(Col("x"), Lit(13))));
}

TEST_F(ExprTestFixture, CaseFirstMatchWins) {
  // Overlapping conditions: row with x < 10 must take the first arm.
  ExprPtr c = Case(Lt(Col("x"), Lit(10)), Lit(1),
                   Case(Lt(Col("x"), Lit(50)), Lit(2), Lit(3)));
  CheckAgainstOracle(*c);
}

TEST_F(ExprTestFixture, CaseWithComputedArms) {
  // Q14-style: case when s like 'PROMO%' then a*b else 0 end
  ExprPtr c = Case(Like("s", "PROMO%"), Mul(Col("a"), Col("b")), Lit(0));
  CheckAgainstOracle(*c);
}

TEST_F(ExprTestFixture, ScalarShortCircuitGuardsDivision) {
  // b-1 can be 0; the guarded division must not be evaluated by the scalar
  // path when the guard fails.
  ScalarEvaluator oracle(*table_);
  ExprPtr e = And(Gt(Col("b"), Lit(1)),
                  Gt(Div(Col("a"), Sub(Col("b"), Lit(1))), Lit(-1)));
  ASSERT_TRUE(BindExpr(*e, *table_).ok());
  for (int64_t row = 0; row < 100; ++row) {
    int64_t v = oracle.Eval(*e, row);
    EXPECT_TRUE(v == 0 || v == 1);
  }
}

}  // namespace
}  // namespace swole
