// Randomized differential testing: generate random tables, random
// predicate/aggregate expression trees, and random plan shapes, then check
// that all four strategy engines produce bit-exact results against the
// reference oracle. This sweeps corners no hand-written test enumerates
// (deep expression nesting, degenerate selectivities, skewed group counts,
// empty intermediate results).

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "common/string_util.h"
#include "engine/reference_engine.h"
#include "storage/table.h"
#include "strategies/strategy.h"

namespace swole {
namespace {

// Builds a random table with a mix of physical types. Column c0..c3 are
// generic values; "fk" references the dim table; "divisor" is >= 1.
struct FuzzData {
  Catalog catalog;
  int64_t dim_rows;
};

std::unique_ptr<FuzzData> MakeFuzzData(Rng* rng) {
  auto data = std::make_unique<FuzzData>();
  int64_t rows = rng->UniformInt(1, 5000);
  data->dim_rows = rng->UniformInt(1, 200);

  auto dim = std::make_shared<Table>("d");
  {
    auto pk = std::make_unique<Column>(
        "d_pk", ColumnType::Int(PhysicalType::kInt32));
    auto v = std::make_unique<Column>(
        "d_v", ColumnType::Int(PhysicalType::kInt16));
    for (int64_t i = 0; i < data->dim_rows; ++i) {
      pk->Append(i);
      v->Append(rng->UniformInt(-50, 50));
    }
    dim->AddColumn(std::move(pk)).CheckOK();
    dim->AddColumn(std::move(v)).CheckOK();
  }

  auto fact = std::make_shared<Table>("f");
  {
    PhysicalType types[4] = {PhysicalType::kInt8, PhysicalType::kInt16,
                             PhysicalType::kInt32, PhysicalType::kInt64};
    for (int c = 0; c < 4; ++c) {
      auto col = std::make_unique<Column>(StringFormat("c%d", c),
                                          ColumnType::Int(types[c]));
      int64_t lo = -100, hi = 100;
      if (rng->Bernoulli(0.3)) {  // sometimes a tiny domain
        lo = 0;
        hi = rng->UniformInt(1, 5);
      }
      for (int64_t i = 0; i < rows; ++i) {
        col->Append(rng->UniformInt(lo, hi));
      }
      fact->AddColumn(std::move(col)).CheckOK();
    }
    auto divisor = std::make_unique<Column>(
        "divisor", ColumnType::Int(PhysicalType::kInt8));
    auto fk = std::make_unique<Column>(
        "fk", ColumnType::Int(PhysicalType::kInt32));
    for (int64_t i = 0; i < rows; ++i) {
      divisor->Append(rng->UniformInt(1, 9));
      fk->Append(rng->UniformInt(0, data->dim_rows - 1));
    }
    fact->AddColumn(std::move(divisor)).CheckOK();
    fact->AddColumn(std::move(fk)).CheckOK();
    Result<FkIndex> index =
        FkIndex::Build(fact->ColumnRef("fk"), dim->ColumnRef("d_pk"));
    index.status().CheckOK();
    fact->AddFkIndex("fk", std::move(index).value()).CheckOK();
  }

  data->catalog.AddTable(fact).CheckOK();
  data->catalog.AddTable(dim).CheckOK();
  return data;
}

// Random numeric expression over fact columns. Division is restricted to
// the strictly positive "divisor" column so pullup evaluation is safe.
ExprPtr RandomNumeric(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.4)) {
    if (rng->Bernoulli(0.3)) return Lit(rng->UniformInt(-20, 20));
    return Col(StringFormat("c%lld",
                            static_cast<long long>(rng->NextBounded(4))));
  }
  switch (rng->NextBounded(4)) {
    case 0:
      return Add(RandomNumeric(rng, depth - 1), RandomNumeric(rng, depth - 1));
    case 1:
      return Sub(RandomNumeric(rng, depth - 1), RandomNumeric(rng, depth - 1));
    case 2:
      return Mul(RandomNumeric(rng, depth - 1), RandomNumeric(rng, depth - 1));
    default:
      return Div(RandomNumeric(rng, depth - 1), Col("divisor"));
  }
}

// Random boolean expression over fact columns.
ExprPtr RandomPredicate(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.5)) {
    BinaryOp ops[] = {BinaryOp::kLt, BinaryOp::kLe, BinaryOp::kGt,
                      BinaryOp::kGe, BinaryOp::kEq, BinaryOp::kNe};
    BinaryOp op = ops[rng->NextBounded(6)];
    ExprPtr col = Col(StringFormat(
        "c%lld", static_cast<long long>(rng->NextBounded(4))));
    if (rng->Bernoulli(0.2)) {
      // Column-vs-column comparison.
      return Binary(op, std::move(col),
                    Col(StringFormat("c%lld", static_cast<long long>(
                                                  rng->NextBounded(4)))));
    }
    if (rng->Bernoulli(0.15)) {
      std::vector<int64_t> values;
      for (int i = 0; i < 3; ++i) values.push_back(rng->UniformInt(-5, 5));
      return InList(std::move(col), std::move(values));
    }
    return Binary(op, std::move(col), Lit(rng->UniformInt(-110, 110)));
  }
  switch (rng->NextBounded(3)) {
    case 0:
      return And(RandomPredicate(rng, depth - 1),
                 RandomPredicate(rng, depth - 1));
    case 1:
      return Or(RandomPredicate(rng, depth - 1),
                RandomPredicate(rng, depth - 1));
    default:
      return Not(RandomPredicate(rng, depth - 1));
  }
}

QueryPlan RandomPlan(Rng* rng, int64_t dim_rows) {
  QueryPlan plan;
  plan.name = "fuzz";
  plan.fact_table = "f";
  if (rng->Bernoulli(0.8)) {
    plan.fact_filter = RandomPredicate(rng, 3);
  }
  if (rng->Bernoulli(0.4)) {
    DimJoin dim;
    dim.hop = {"fk", "d", "d_pk"};
    if (rng->Bernoulli(0.7)) {
      dim.filter = Binary(BinaryOp::kLt, Col("d_v"),
                          Lit(rng->UniformInt(-60, 60)));
    }
    plan.dims.push_back(std::move(dim));
  }
  if (rng->Bernoulli(0.5)) {
    plan.group_by = rng->Bernoulli(0.5)
                        ? Col("fk")
                        : RandomNumeric(rng, 1);
    plan.group_cardinality_hint = dim_rows;
  }
  int naggs = static_cast<int>(rng->UniformInt(1, 3));
  for (int a = 0; a < naggs; ++a) {
    if (rng->Bernoulli(0.25)) {
      plan.aggs.emplace_back(AggKind::kCount, nullptr,
                             StringFormat("agg%d", a));
    } else {
      plan.aggs.emplace_back(AggKind::kSum, RandomNumeric(rng, 2),
                             StringFormat("agg%d", a));
    }
  }
  return plan;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferentialTest, EnginesMatchOracleOnRandomPlans) {
  Rng rng(0xF00D + static_cast<uint64_t>(GetParam()) * 7919);
  std::unique_ptr<FuzzData> data = MakeFuzzData(&rng);
  ReferenceEngine oracle(data->catalog);

  for (int round = 0; round < 8; ++round) {
    QueryPlan plan = RandomPlan(&rng, data->dim_rows);
    Result<QueryResult> expected = oracle.Execute(plan);
    ASSERT_TRUE(expected.ok())
        << expected.status().ToString() << "\n" << plan.ToString();

    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kHybrid,
          StrategyKind::kRof, StrategyKind::kSwole}) {
      StrategyOptions options;
      options.tile_size = 128;  // many tile boundaries at fuzz scale
      std::unique_ptr<Strategy> engine =
          MakeStrategy(kind, data->catalog, options);
      Result<QueryResult> actual = engine->Execute(plan);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ASSERT_EQ(*actual, *expected)
          << "strategy " << engine->name() << " diverges on\n"
          << plan.ToString() << "\nexpected:\n"
          << expected->ToString() << "actual:\n"
          << actual->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace swole
