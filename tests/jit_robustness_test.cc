// Robustness tests for the JIT pipeline: the flag-degradation retry ladder,
// compile timeouts (hung compilers get killed), the content-addressed
// kernel cache (memory + disk layers), fault injection at every pipeline
// stage, and the interpreter fallback — which must produce bit-exact
// results whenever the JIT path is broken, so a compiler outage degrades
// throughput, never correctness.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <dirent.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "common/subprocess.h"
#include "engine/reference_engine.h"
#include "micro/micro.h"
#include "storage/table.h"

namespace swole {
namespace {

using codegen::CompiledKernel;
using codegen::ExecutionReport;
using codegen::GeneratorOptions;
using codegen::JitOptions;
using codegen::JitStats;
using codegen::KernelCache;

// Sets an environment variable for the lifetime of the scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

void RemoveTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

class JitRobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 10'000;
    config.s_small_rows = 50;
    config.s_large_rows = 500;
    config.c_cardinalities = {10, 200};
    config.seed = 5;
    data_ = MicroData::Generate(config).release();

    std::string tmpl = "/tmp/swole_fakecxx_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    script_dir_ = new std::string(tmpl);
  }
  static void TearDownTestSuite() {
    RemoveTree(*script_dir_);
    delete script_dir_;
    script_dir_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    FaultInjector::Global().ClearAll();
    KernelCache::Global().Clear();
  }
  void TearDown() override { FaultInjector::Global().ClearAll(); }

  // Writes an executable fake-compiler script and returns its path.
  static std::string WriteScript(const std::string& name,
                                 const std::string& body) {
    std::string path = *script_dir_ + "/" + name;
    {
      std::ofstream out(path);
      out << body;
    }
    ::chmod(path.c_str(), 0755);
    return path;
  }

  static GeneratorOptions SwoleOptions() {
    GeneratorOptions options;
    options.strategy = StrategyKind::kSwole;
    return options;
  }

  static QueryResult Oracle(const QueryPlan& plan) {
    ReferenceEngine oracle(data_->catalog);
    return oracle.Execute(plan).value();
  }

  static MicroData* data_;
  static std::string* script_dir_;
};

MicroData* JitRobustnessTest::data_ = nullptr;
std::string* JitRobustnessTest::script_dir_ = nullptr;

// ---- subprocess runner ----

TEST_F(JitRobustnessTest, SubprocessCapturesOutputAndExitCode) {
  Result<SubprocessResult> run =
      RunSubprocess({"/bin/sh", "-c", "echo boom >&2; exit 3"});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exit_code, 3);
  EXPECT_FALSE(run->timed_out);
  EXPECT_NE(run->captured_output.find("boom"), std::string::npos);
}

TEST_F(JitRobustnessTest, SubprocessTimeoutKillsHungChild) {
  SubprocessOptions options;
  options.timeout_ms = 300;
  Result<SubprocessResult> run =
      RunSubprocess({"/bin/sh", "-c", "sleep 30"}, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->timed_out);
  EXPECT_FALSE(run->Succeeded());
  // The child must die with the timeout, not with the sleep.
  EXPECT_LT(run->elapsed_ms, 10'000);
}

TEST_F(JitRobustnessTest, SubprocessReportsMissingBinary) {
  Result<SubprocessResult> run =
      RunSubprocess({"/nonexistent/swole-compiler"});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->exit_code, 127);
}

// ---- fault injector ----

TEST_F(JitRobustnessTest, FaultInjectorParsesSpecAndIsDeterministic) {
  FaultInjector& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("a:1.0,b:0.0", 7).ok());
  EXPECT_TRUE(injector.ShouldFail("a"));
  EXPECT_FALSE(injector.ShouldFail("b"));
  EXPECT_FALSE(injector.ShouldFail("unarmed_site"));
  EXPECT_EQ(injector.InjectedCount("a"), 1);

  EXPECT_FALSE(injector.Configure("a:2.0", 7).ok());
  EXPECT_FALSE(injector.Configure("a:b:c", 7).ok());
  EXPECT_FALSE(injector.Configure("a:notanumber", 7).ok());

  // Same spec + seed => the same injection sequence, call for call.
  std::vector<bool> first;
  ASSERT_TRUE(injector.Configure("flaky:0.5", 99).ok());
  for (int i = 0; i < 64; ++i) first.push_back(injector.ShouldFail("flaky"));
  ASSERT_TRUE(injector.Configure("flaky:0.5", 99).ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(injector.ShouldFail("flaky"), first[i]) << "call " << i;
  }
  // And a 0.5 stream actually mixes failures and successes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  injector.ClearAll();
}

// ---- option validation (shell-metacharacter guard) ----

TEST_F(JitRobustnessTest, JitOptionsValidationRejectsUnsafeValues) {
  EXPECT_TRUE(JitOptions().Validate().ok());

  JitOptions bad_compiler;
  bad_compiler.compiler = "c++ -evil";  // embedded whitespace
  EXPECT_EQ(bad_compiler.Validate().code(), StatusCode::kInvalidArgument);

  JitOptions bad_dir;
  bad_dir.work_dir = "/tmp/x; rm -rf /";
  EXPECT_EQ(bad_dir.Validate().code(), StatusCode::kInvalidArgument);

  JitOptions bad_flags;
  bad_flags.extra_flags = "-O2 $(reboot)";
  EXPECT_EQ(bad_flags.Validate().code(), StatusCode::kInvalidArgument);

  JitOptions bad_cache;
  bad_cache.disk_cache_dir = "/tmp/\"quoted\"";
  EXPECT_EQ(bad_cache.Validate().code(), StatusCode::kInvalidArgument);

  JitOptions bad_timeout;
  bad_timeout.compile_timeout_ms = -1;
  EXPECT_EQ(bad_timeout.Validate().code(), StatusCode::kInvalidArgument);

  // An unsafe SWOLE_CXX is rejected at compile time, not passed through.
  ScopedEnv cxx("SWOLE_CXX", "c++ --sneaky");
  Result<std::unique_ptr<CompiledKernel>> compiled = codegen::GenerateAndCompile(
      MicroQ1(false, 37), data_->catalog, SwoleOptions());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
}

// ---- retry ladder ----

TEST_F(JitRobustnessTest, CompileFailureDegradesFlagsAndSucceeds) {
  // A compiler that ICEs on the aggressive rung but works otherwise.
  std::string fake_cxx = WriteScript("fail_o3.sh",
                                     "#!/bin/sh\n"
                                     "for a in \"$@\"; do\n"
                                     "  case \"$a\" in\n"
                                     "    -O3|-march=native)\n"
                                     "      echo \"simulated ICE at $a\" >&2\n"
                                     "      exit 1;;\n"
                                     "  esac\n"
                                     "done\n"
                                     "exec c++ \"$@\"\n");
  ScopedEnv cxx("SWOLE_CXX", fake_cxx);

  JitStats::Snapshot before = codegen::GlobalJitStats().snapshot();
  JitOptions jit;
  jit.use_cache = false;
  QueryPlan plan = MicroQ1(false, 37);
  Result<std::unique_ptr<CompiledKernel>> compiled =
      codegen::GenerateAndCompile(plan, data_->catalog, SwoleOptions(), jit);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  JitStats::Snapshot after = codegen::GlobalJitStats().snapshot();
  EXPECT_GE(after.retries - before.retries, 1);
  EXPECT_GE(after.compile_failures - before.compile_failures, 1);
  EXPECT_GE(after.compiles - before.compiles, 2);

  Result<QueryResult> result = (*compiled)->Run(data_->catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, Oracle(plan));
}

TEST_F(JitRobustnessTest, AllRungsFailingReportsLastError) {
  std::string fake_cxx = WriteScript(
      "always_fail.sh", "#!/bin/sh\necho \"hopeless ICE\" >&2\nexit 1\n");
  ScopedEnv cxx("SWOLE_CXX", fake_cxx);
  JitOptions jit;
  jit.use_cache = false;
  Result<std::unique_ptr<CompiledKernel>> compiled = codegen::GenerateAndCompile(
      MicroQ1(false, 37), data_->catalog, SwoleOptions(), jit);
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("hopeless ICE"),
            std::string::npos);
  EXPECT_NE(compiled.status().message().find("3 attempt"), std::string::npos);
}

// ---- compile timeout ----

TEST_F(JitRobustnessTest, TimeoutKillsHungCompilerAndFallbackServes) {
  std::string hang_cxx =
      WriteScript("hang.sh", "#!/bin/sh\nsleep 30\nexit 0\n");
  ScopedEnv cxx("SWOLE_CXX", hang_cxx);

  JitOptions jit;
  jit.use_cache = false;
  jit.compile_timeout_ms = 400;
  jit.degrade_flags.clear();  // one rung; keep the test fast

  JitStats::Snapshot before = codegen::GlobalJitStats().snapshot();
  Result<std::unique_ptr<CompiledKernel>> compiled = codegen::GenerateAndCompile(
      MicroQ1(false, 37), data_->catalog, SwoleOptions(), jit);
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("timed out"), std::string::npos);
  JitStats::Snapshot after = codegen::GlobalJitStats().snapshot();
  EXPECT_EQ(after.timeouts - before.timeouts, 1);

  // The query is still served — interpreted.
  QueryPlan plan = MicroQ1(false, 37);
  ExecutionReport report;
  Result<QueryResult> result = codegen::ExecuteWithFallback(
      plan, data_->catalog, SwoleOptions(), jit, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(report.used_fallback);
  EXPECT_EQ(*result, Oracle(plan));
}

// ---- fault injection at every stage -> interpreter fallback ----

TEST_F(JitRobustnessTest, FaultAtEveryStageFallsBackBitExact) {
  const char* kSites[] = {"jit_workdir", "jit_source_write", "jit_compile",
                          "jit_dlopen", "jit_dlsym"};
  QueryPlan plan = MicroQ4(false, 60, 40);
  QueryResult expected = Oracle(plan);
  JitOptions jit;
  jit.use_cache = false;

  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    FaultInjector::Global().SetFault(site, 1.0);
    JitStats::Snapshot before = codegen::GlobalJitStats().snapshot();
    ExecutionReport report;
    Result<QueryResult> result = codegen::ExecuteWithFallback(
        MicroQ4(false, 60, 40), data_->catalog, SwoleOptions(), jit,
        &report);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(report.used_fallback);
    EXPECT_FALSE(report.used_jit);
    EXPECT_EQ(report.fallback_engine, StrategyKindName(StrategyKind::kSwole));
    EXPECT_NE(report.fallback_reason.find(site), std::string::npos);
    EXPECT_EQ(*result, expected);
    JitStats::Snapshot after = codegen::GlobalJitStats().snapshot();
    EXPECT_EQ(after.fallbacks - before.fallbacks, 1);
    EXPECT_GE(FaultInjector::Global().InjectedCount(site), 1);
    FaultInjector::Global().ClearAll();
  }

  // Faults off: the same entry point serves the query compiled.
  ExecutionReport report;
  Result<QueryResult> result = codegen::ExecuteWithFallback(
      MicroQ4(false, 60, 40), data_->catalog, SwoleOptions(), jit, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(report.used_jit);
  EXPECT_FALSE(report.used_fallback);
  EXPECT_EQ(*result, expected);
}

TEST_F(JitRobustnessTest, CompileFaultSweepAcrossStrategiesAndPlans) {
  // Differential check: with the compiler fully broken, every strategy and
  // plan shape still answers correctly through the interpreted engines.
  FaultInjector::Global().SetFault("jit_compile", 1.0);
  JitOptions jit;
  jit.use_cache = false;
  for (StrategyKind kind : {StrategyKind::kDataCentric, StrategyKind::kHybrid,
                            StrategyKind::kSwole}) {
    for (int q = 0; q < 3; ++q) {
      QueryPlan plan = q == 0   ? MicroQ1(false, 37)
                       : q == 1 ? MicroQ2(data_->c_columns[0],
                                          data_->c_actual[0], 45)
                                : MicroQ4(false, 60, 40);
      SCOPED_TRACE(StringFormat("%s q%d", StrategyKindName(kind), q));
      QueryResult expected = Oracle(plan);
      GeneratorOptions gen;
      gen.strategy = kind;
      ExecutionReport report;
      Result<QueryResult> result = codegen::ExecuteWithFallback(
          plan, data_->catalog, gen, jit, &report);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(report.used_fallback);
      EXPECT_EQ(*result, expected);
    }
  }
}

TEST_F(JitRobustnessTest, EnvDrivenFaultSpecIsHonored) {
  ScopedEnv fault("SWOLE_FAULT", "jit_compile:1.0");
  FaultInjector::Global().LoadFromEnv();
  JitOptions jit;
  jit.use_cache = false;
  QueryPlan plan = MicroQ1(false, 37);
  ExecutionReport report;
  Result<QueryResult> result = codegen::ExecuteWithFallback(
      plan, data_->catalog, SwoleOptions(), jit, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(report.used_fallback);
  EXPECT_EQ(*result, Oracle(plan));
  FaultInjector::Global().ClearAll();
}

TEST_F(JitRobustnessTest, UnimplementedPlanFallsBackToItsEngine) {
  // ROF has no code generator; ExecuteWithFallback runs its interpreted
  // engine instead of erroring (the Bespoke-OLAP "generic path" behavior).
  QueryPlan plan = MicroQ1(false, 37);
  GeneratorOptions gen;
  gen.strategy = StrategyKind::kRof;
  ExecutionReport report;
  Result<QueryResult> result = codegen::ExecuteWithFallback(
      plan, data_->catalog, gen, {}, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(report.used_fallback);
  EXPECT_EQ(report.fallback_engine, StrategyKindName(StrategyKind::kRof));
  EXPECT_NE(report.fallback_reason.find("Unimplemented"), std::string::npos);
  EXPECT_EQ(*result, Oracle(plan));
}

// ---- kernel cache ----

TEST_F(JitRobustnessTest, KernelCacheHitSkipsRecompilation) {
  QueryPlan plan = MicroQ1(false, 21);
  JitStats::Snapshot before = codegen::GlobalJitStats().snapshot();

  Result<std::unique_ptr<CompiledKernel>> first =
      codegen::GenerateAndCompile(plan, data_->catalog, SwoleOptions());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE((*first)->from_cache());
  JitStats::Snapshot mid = codegen::GlobalJitStats().snapshot();
  EXPECT_GE(mid.compiles - before.compiles, 1);

  Result<std::unique_ptr<CompiledKernel>> second =
      codegen::GenerateAndCompile(MicroQ1(false, 21), data_->catalog,
                                  SwoleOptions());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE((*second)->from_cache());
  JitStats::Snapshot after = codegen::GlobalJitStats().snapshot();
  EXPECT_EQ(after.compiles, mid.compiles);  // no new compiler invocation
  EXPECT_EQ(after.cache_hits_memory - mid.cache_hits_memory, 1);

  QueryResult expected = Oracle(plan);
  EXPECT_EQ(*(*first)->Run(data_->catalog), expected);
  EXPECT_EQ(*(*second)->Run(data_->catalog), expected);
}

TEST_F(JitRobustnessTest, DiskCacheSurvivesMemoryCacheClear) {
  std::string tmpl = "/tmp/swole_diskcache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
  JitOptions jit;
  jit.disk_cache_dir = tmpl;

  QueryPlan plan = MicroQ1(false, 63);
  Result<std::unique_ptr<CompiledKernel>> first =
      codegen::GenerateAndCompile(plan, data_->catalog, SwoleOptions(), jit);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE((*first)->from_cache());

  // A new process would start with an empty memory cache; model that.
  KernelCache::Global().Clear();
  JitStats::Snapshot before = codegen::GlobalJitStats().snapshot();
  Result<std::unique_ptr<CompiledKernel>> second = codegen::GenerateAndCompile(
      MicroQ1(false, 63), data_->catalog, SwoleOptions(), jit);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE((*second)->from_cache());
  JitStats::Snapshot after = codegen::GlobalJitStats().snapshot();
  EXPECT_EQ(after.cache_hits_disk - before.cache_hits_disk, 1);
  EXPECT_EQ(after.compiles, before.compiles);
  EXPECT_EQ(*(*second)->Run(data_->catalog), Oracle(plan));

  RemoveTree(tmpl);
}

TEST_F(JitRobustnessTest, CorruptedDiskCacheEntryIsQuarantinedAndRecompiled) {
  std::string tmpl = "/tmp/swole_diskcache_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
  JitOptions jit;
  jit.disk_cache_dir = tmpl;

  QueryPlan plan = MicroQ1(false, 77);
  Result<std::unique_ptr<CompiledKernel>> first =
      codegen::GenerateAndCompile(plan, data_->catalog, SwoleOptions(), jit);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  QueryResult expected = Oracle(plan);
  EXPECT_EQ(*(*first)->Run(data_->catalog), expected);

  // Corrupt the cached shared object in place (flip one byte mid-file).
  // The .sum sidecar now disagrees with the content, exactly as after a
  // torn write or bit rot.
  auto list_entries = [&](const std::string& suffix) {
    std::vector<std::string> out;
    DIR* d = ::opendir(tmpl.c_str());
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        out.push_back(tmpl + "/" + name);
      }
    }
    ::closedir(d);
    return out;
  };
  std::vector<std::string> sos = list_entries(".so");
  ASSERT_EQ(sos.size(), 1u);
  {
    std::fstream f(sos[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(128);
    char byte = 0;
    f.seekg(128);
    f.get(byte);
    byte ^= 0x1;
    f.seekp(128);
    f.put(byte);
  }

  // A fresh process (empty memory cache) must not dlopen the corrupt
  // object: the lookup quarantines it and the compile path rebuilds.
  KernelCache::Global().Clear();
  JitStats::Snapshot before = codegen::GlobalJitStats().snapshot();
  Result<std::unique_ptr<CompiledKernel>> second = codegen::GenerateAndCompile(
      MicroQ1(false, 77), data_->catalog, SwoleOptions(), jit);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE((*second)->from_cache());
  JitStats::Snapshot after = codegen::GlobalJitStats().snapshot();
  EXPECT_EQ(after.cache_hits_disk, before.cache_hits_disk);
  EXPECT_GE(after.compiles - before.compiles, 1);
  EXPECT_EQ(*(*second)->Run(data_->catalog), expected);

  // The corrupt object is preserved for inspection, not silently deleted,
  // and the rebuilt entry has a fresh checksum sidecar.
  EXPECT_FALSE(list_entries(".corrupt." + std::to_string(::getpid())).empty());
  EXPECT_EQ(list_entries(".so").size(), 1u);
  EXPECT_EQ(list_entries(".so.sum").size(), 1u);

  // The rebuilt entry serves disk hits again.
  KernelCache::Global().Clear();
  Result<std::unique_ptr<CompiledKernel>> third = codegen::GenerateAndCompile(
      MicroQ1(false, 77), data_->catalog, SwoleOptions(), jit);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_TRUE((*third)->from_cache());
  EXPECT_EQ(*(*third)->Run(data_->catalog), expected);

  RemoveTree(tmpl);
}

// ---- JIT temp-directory resolution (SWOLE_JIT_TMPDIR / TMPDIR) ----

namespace {

// Removes a base directory that holds swole_jit_* work dirs (one level).
void RemoveBaseTree(const std::string& base) {
  DIR* d = ::opendir(base.c_str());
  if (d != nullptr) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      RemoveTree(base + "/" + name);
    }
    ::closedir(d);
  }
  ::rmdir(base.c_str());
}

}  // namespace

TEST_F(JitRobustnessTest, JitTmpDirFollowsEnvironmentWithPrecedence) {
  std::string tmpdir_base = "/tmp/swole_tmpbase_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpdir_base.data()), nullptr);
  std::string own_base = "/tmp/swole_ownbase_XXXXXX";
  ASSERT_NE(::mkdtemp(own_base.data()), nullptr);

  // keep_artifacts + no cache: every compile is fresh and leaves its
  // source where the work dir was created.
  JitOptions jit;
  jit.use_cache = false;
  jit.keep_artifacts = true;
  jit.extra_flags = "-O1";
  jit.degrade_flags.clear();

  {
    ScopedEnv tmpdir("TMPDIR", tmpdir_base);
    Result<std::unique_ptr<CompiledKernel>> compiled =
        codegen::GenerateAndCompile(MicroQ1(false, 11), data_->catalog,
                                    SwoleOptions(), jit);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ((*compiled)->source_path().rfind(tmpdir_base + "/swole_jit_",
                                               0),
              0u)
        << (*compiled)->source_path();
  }
  {
    // SWOLE_JIT_TMPDIR wins over TMPDIR; a trailing slash is tolerated.
    ScopedEnv tmpdir("TMPDIR", tmpdir_base);
    ScopedEnv own("SWOLE_JIT_TMPDIR", own_base + "/");
    Result<std::unique_ptr<CompiledKernel>> compiled =
        codegen::GenerateAndCompile(MicroQ1(false, 12), data_->catalog,
                                    SwoleOptions(), jit);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ(
        (*compiled)->source_path().rfind(own_base + "/swole_jit_", 0), 0u)
        << (*compiled)->source_path();
  }

  RemoveBaseTree(tmpdir_base);
  RemoveBaseTree(own_base);
}

TEST_F(JitRobustnessTest, ExecUnsafeJitTmpDirFallsBackToTmp) {
  // The work-dir path crosses the compiler's exec boundary: a base with
  // shell metacharacters is refused (with a warning), not propagated.
  ScopedEnv bad("SWOLE_JIT_TMPDIR", "/tmp/evil base; rm -rf /");
  JitOptions jit;
  jit.use_cache = false;
  jit.keep_artifacts = true;
  jit.extra_flags = "-O1";
  jit.degrade_flags.clear();
  Result<std::unique_ptr<CompiledKernel>> compiled =
      codegen::GenerateAndCompile(MicroQ1(false, 13), data_->catalog,
                                  SwoleOptions(), jit);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ((*compiled)->source_path().rfind("/tmp/swole_jit_", 0), 0u)
      << (*compiled)->source_path();
  // Drop the kept artifacts.
  std::string dir = (*compiled)->source_path();
  dir = dir.substr(0, dir.find_last_of('/'));
  RemoveTree(dir);
}

TEST_F(JitRobustnessTest, UnwritableJitTmpDirReportsActionableError) {
  ScopedEnv bad("SWOLE_JIT_TMPDIR", "/nonexistent/swole_base");
  JitOptions jit;
  jit.use_cache = false;
  Result<std::unique_ptr<CompiledKernel>> compiled =
      codegen::GenerateAndCompile(MicroQ1(false, 14), data_->catalog,
                                  SwoleOptions(), jit);
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("SWOLE_JIT_TMPDIR"),
            std::string::npos)
      << compiled.status().ToString();
}

// ---- Run-time binding validation ----

namespace binding {

std::unique_ptr<Column> MakeIntColumn(const std::string& name,
                                      PhysicalType type, int64_t rows,
                                      int64_t modulus) {
  auto column = std::make_unique<Column>(name, ColumnType::Int(type));
  for (int64_t i = 0; i < rows; ++i) column->Append(i % modulus);
  return column;
}

// fact "f"(fk -> d.d_pk, v), dim "d"(d_pk, d_x). The fk index is built
// against `index_pk_rows` primary-key values — when that disagrees with the
// bound dim table (stale index after an append), Run must refuse.
void BuildCatalog(Catalog* catalog, int64_t fact_rows, int64_t dim_rows,
                  int64_t index_pk_rows) {
  auto dim = std::make_shared<Table>("d");
  dim->AddColumn(
         MakeIntColumn("d_pk", PhysicalType::kInt32, dim_rows, dim_rows))
      .CheckOK();
  dim->AddColumn(MakeIntColumn("d_x", PhysicalType::kInt8, dim_rows, 100))
      .CheckOK();

  auto fact = std::make_shared<Table>("f");
  fact->AddColumn(MakeIntColumn("fk", PhysicalType::kInt32, fact_rows,
                                std::min(dim_rows, index_pk_rows)))
      .CheckOK();
  fact->AddColumn(MakeIntColumn("v", PhysicalType::kInt16, fact_rows, 50))
      .CheckOK();

  // Build the index against a detached pk column so its referenced size can
  // disagree with the registered dim table.
  std::unique_ptr<Column> index_pk = MakeIntColumn(
      "d_pk", PhysicalType::kInt32, index_pk_rows, index_pk_rows);
  fact->AddFkIndex("fk",
                   FkIndex::Build(fact->ColumnRef("fk"), *index_pk).value())
      .CheckOK();

  catalog->AddTable(std::move(fact)).CheckOK();
  catalog->AddTable(std::move(dim)).CheckOK();
}

QueryPlan JoinPlan() {
  QueryPlan plan;
  plan.name = "binding_join";
  plan.fact_table = "f";
  plan.fact_filter = Ge(Col("v"), Lit(0));
  plan.dims.emplace_back(Hop{"fk", "d", "d_pk"}, Lt(Col("d_x"), Lit(50)));
  plan.aggs.emplace_back(AggKind::kSum, Col("v"), "s");
  return plan;
}

}  // namespace binding

TEST_F(JitRobustnessTest, RunRejectsFkIndexInconsistentWithTables) {
  // Consistent catalog: kernel compiles and runs.
  Catalog good;
  binding::BuildCatalog(&good, 1000, 50, 50);
  GeneratorOptions gen = SwoleOptions();  // positional-bitmap join
  Result<std::unique_ptr<CompiledKernel>> compiled =
      codegen::GenerateAndCompile(binding::JoinPlan(), good, gen);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_TRUE((*compiled)->Run(good).ok());

  // An index covering fewer fact rows than its table can't even be
  // registered — the storage layer owns that invariant.
  Table fact("f2");
  fact.AddColumn(
          binding::MakeIntColumn("fk", PhysicalType::kInt32, 1000, 50))
      .CheckOK();
  std::unique_ptr<Column> short_fk =
      binding::MakeIntColumn("fk", PhysicalType::kInt32, 500, 50);
  std::unique_ptr<Column> pk =
      binding::MakeIntColumn("d_pk", PhysicalType::kInt32, 50, 50);
  EXPECT_EQ(fact.AddFkIndex("fk", FkIndex::Build(*short_fk, *pk).value())
                .code(),
            StatusCode::kInvalidArgument);

  // Index references fewer dim rows than the bound dim table (stale index
  // after a dim append): the positional bitmap would be probed past its
  // end. Run must refuse instead of letting generated code read OOB.
  Catalog short_ref;
  binding::BuildCatalog(&short_ref, 1000, 60, 50);
  Result<QueryResult> run_ref = (*compiled)->Run(short_ref);
  ASSERT_FALSE(run_ref.ok());
  EXPECT_EQ(run_ref.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run_ref.status().message().find("references"),
            std::string::npos);
}

}  // namespace
}  // namespace swole
