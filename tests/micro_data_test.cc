// Microbenchmark substrate tests: schema/type conventions of Fig. 7a,
// uniform distributions, fk integrity, cardinality capping, and
// selectivity semantics of the [SEL] parameter.

#include <gtest/gtest.h>

#include <map>

#include "cost/estimates.h"
#include "engine/reference_engine.h"
#include "micro/micro.h"
#include "storage/table.h"
#include "strategies/strategy.h"

namespace swole {
namespace {

class MicroDataTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 40'000;
    config.s_small_rows = 100;
    config.s_large_rows = 2'000;
    config.c_cardinalities = {10, 1'000, 1'000'000};  // last one capped
    config.seed = 11;
    data_ = MicroData::Generate(config).release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static MicroData* data_;
};

MicroData* MicroDataTest::data_ = nullptr;

TEST_F(MicroDataTest, SchemaAndNarrowTypes) {
  const Table& r = data_->catalog.TableRef("r");
  EXPECT_EQ(r.num_rows(), 40'000);
  // Cardinality-100 attributes use int8 (null suppression).
  EXPECT_EQ(r.ColumnRef("r_a").type().physical, PhysicalType::kInt8);
  EXPECT_EQ(r.ColumnRef("r_x").type().physical, PhysicalType::kInt8);
  // Fk columns sized to the referenced table.
  EXPECT_EQ(r.ColumnRef("r_fk_small").type().physical, PhysicalType::kInt8);
  EXPECT_EQ(r.ColumnRef("r_fk_large").type().physical,
            PhysicalType::kInt16);
}

TEST_F(MicroDataTest, DomainsMatchFig7a) {
  const Table& r = data_->catalog.TableRef("r");
  EXPECT_GE(r.ColumnRef("r_a").MinValue(), 0);
  EXPECT_LE(r.ColumnRef("r_a").MaxValue(), 99);
  EXPECT_GE(r.ColumnRef("r_b").MinValue(), 1);  // safe divisor
  EXPECT_LE(r.ColumnRef("r_b").MaxValue(), 100);
  EXPECT_EQ(r.ColumnRef("r_y").MinValue(), 1);
  EXPECT_EQ(r.ColumnRef("r_y").MaxValue(), 1);
}

TEST_F(MicroDataTest, CardinalityCapping) {
  ASSERT_EQ(data_->c_columns.size(), 3u);
  EXPECT_EQ(data_->c_actual[0], 10);
  EXPECT_EQ(data_->c_actual[1], 1'000);
  EXPECT_EQ(data_->c_actual[2], 10'000);  // capped at rows/4
  const Table& r = data_->catalog.TableRef("r");
  for (size_t c = 0; c < data_->c_columns.size(); ++c) {
    EXPECT_LT(r.ColumnRef(data_->c_columns[c]).MaxValue(),
              data_->c_actual[c]);
  }
}

TEST_F(MicroDataTest, FkIndexesRegisteredAndDense) {
  const Table& r = data_->catalog.TableRef("r");
  Result<const FkIndex*> small = r.GetFkIndex("r_fk_small");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ((*small)->referenced_size(), 100);
  Result<const FkIndex*> large = r.GetFkIndex("r_fk_large");
  ASSERT_TRUE(large.ok());
  EXPECT_EQ((*large)->referenced_size(), 2'000);
  // Dense pk => offset equals the fk value.
  for (int64_t row = 0; row < 200; ++row) {
    EXPECT_EQ((*small)->OffsetAt(row),
              static_cast<uint32_t>(r.ColumnRef("r_fk_small").ValueAt(row)));
  }
}

TEST_F(MicroDataTest, SelParameterIsSelectivityPercent) {
  const Table& r = data_->catalog.TableRef("r");
  for (int64_t sel : {0, 25, 50, 75, 100}) {
    QueryPlan plan = MicroQ1(false, sel);
    double measured =
        EstimateSelectivity(r, *plan.fact_filter, r.num_rows());
    EXPECT_NEAR(measured, sel / 100.0, 0.02) << "sel " << sel;
  }
}

TEST_F(MicroDataTest, GenerationIsDeterministic) {
  MicroConfig config = data_->config;
  auto again = MicroData::Generate(config);
  const Table& a = data_->catalog.TableRef("r");
  const Table& b = again->catalog.TableRef("r");
  for (int64_t row = 0; row < 100; ++row) {
    EXPECT_EQ(a.ColumnRef("r_a").ValueAt(row),
              b.ColumnRef("r_a").ValueAt(row));
    EXPECT_EQ(a.ColumnRef("r_fk_large").ValueAt(row),
              b.ColumnRef("r_fk_large").ValueAt(row));
  }
}

TEST_F(MicroDataTest, DifferentSeedsDiffer) {
  MicroConfig config = data_->config;
  config.seed = 999;
  config.r_rows = 1'000;
  auto other = MicroData::Generate(config);
  const Table& a = data_->catalog.TableRef("r");
  const Table& b = other->catalog.TableRef("r");
  int differing = 0;
  for (int64_t row = 0; row < 1'000; ++row) {
    if (a.ColumnRef("r_a").ValueAt(row) != b.ColumnRef("r_a").ValueAt(row)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 900);
}

TEST_F(MicroDataTest, ZipfSkewConcentratesKeys) {
  MicroConfig config = data_->config;
  config.r_rows = 20'000;
  config.zipf_theta = 0.9;
  auto skewed = MicroData::Generate(config);
  const Column& fk = skewed->catalog.TableRef("r").ColumnRef("r_fk_large");
  // Count occurrences; under theta=0.9 the hottest key draws far more
  // than the uniform expectation (rows / card = 10).
  std::map<int64_t, int64_t> counts;
  for (int64_t row = 0; row < fk.size(); ++row) counts[fk.ValueAt(row)]++;
  int64_t hottest = 0;
  for (const auto& [key, count] : counts) hottest = std::max(hottest, count);
  EXPECT_GT(hottest, 100);
  // Every key still resolves through the fk index (values in range).
  EXPECT_TRUE(
      skewed->catalog.TableRef("r").GetFkIndex("r_fk_large").ok());
}

TEST_F(MicroDataTest, SkewedDataStillAgreesAcrossStrategies) {
  MicroConfig config = data_->config;
  config.r_rows = 10'000;
  config.zipf_theta = 0.8;
  auto skewed = MicroData::Generate(config);
  QueryPlan plan = MicroQ2(skewed->c_columns[1], skewed->c_actual[1], 60);
  ReferenceEngine oracle(skewed->catalog);
  QueryResult expected = oracle.Execute(plan).value();
  for (StrategyKind kind :
       {StrategyKind::kDataCentric, StrategyKind::kHybrid,
        StrategyKind::kRof, StrategyKind::kSwole}) {
    QueryResult actual =
        MakeStrategy(kind, skewed->catalog)->Execute(plan).value();
    EXPECT_EQ(actual, expected) << StrategyKindName(kind);
  }
}

TEST_F(MicroDataTest, QueryBuildersValidate) {
  for (int64_t sel : {0, 50, 100}) {
    EXPECT_TRUE(
        ValidatePlan(MicroQ1(false, sel), data_->catalog).ok());
    EXPECT_TRUE(ValidatePlan(MicroQ1(true, sel), data_->catalog).ok());
    EXPECT_TRUE(ValidatePlan(MicroQ3(true, sel), data_->catalog).ok());
    EXPECT_TRUE(
        ValidatePlan(MicroQ4(false, sel, 100 - sel), data_->catalog).ok());
    EXPECT_TRUE(ValidatePlan(MicroQ5(true, sel, 2'000), data_->catalog).ok());
  }
  EXPECT_TRUE(ValidatePlan(MicroQ2(data_->c_columns[1], data_->c_actual[1],
                                   40),
                           data_->catalog)
                  .ok());
}

}  // namespace
}  // namespace swole
