// Calibration smoke tests: the probes return sane, ordered values on any
// machine (kept tiny so they run in noise-tolerant CI).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cost/calibration.h"
#include "storage/string_column.h"

namespace swole {
namespace {

// Sets an environment variable for the lifetime of the scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

CalibrationOptions TinyOptions() {
  CalibrationOptions options;
  options.probe_bytes = 1 << 20;
  options.ht_probes = 1 << 14;
  return options;
}

TEST(CalibrationTest, ReadProbesArePositiveAndOrdered) {
  CalibrationOptions options = TinyOptions();
  double seq = MeasureReadSeqNs(options);
  double cond = MeasureReadCondNs(options);
  EXPECT_GT(seq, 0.0);
  EXPECT_LT(seq, 100.0);  // a sequential int32 read is never 100ns
  EXPECT_GT(cond, 0.0);
}

TEST(CalibrationTest, HtLookupGrowsWithTableSize) {
  CalibrationOptions options = TinyOptions();
  double small = MeasureHtLookupNs(1 << 8, options);
  double large = MeasureHtLookupNs(1 << 18, options);
  EXPECT_GT(small, 0.0);
  // Larger tables are never (much) cheaper to probe.
  EXPECT_GT(large, small * 0.5);
}

TEST(CalibrationTest, NullEntryProbeIsCheap) {
  CalibrationOptions options = TinyOptions();
  double null_probe = MeasureHtNullNs(options);
  EXPECT_GT(null_probe, 0.0);
  EXPECT_LT(null_probe, 200.0);
}

TEST(CalibrationTest, NsPerCycleIsPlausible) {
  double ns = MeasureNsPerCycle();
  EXPECT_GT(ns, 0.05);  // no 20GHz machines
  EXPECT_LT(ns, 5.0);   // no 200MHz machines
}

TEST(CalibrationTest, CacheBytesEnvOverridesDefault) {
  ScopedEnv l1("SWOLE_L1_BYTES", "16384");
  ScopedEnv l2("SWOLE_L2_BYTES", "262144");
  ScopedEnv l3("SWOLE_L3_BYTES", "2097152");
  CostProfile p = CalibrateCostProfile(TinyOptions());
  EXPECT_EQ(p.l1_bytes, 16384);
  EXPECT_EQ(p.l2_bytes, 262144);
  EXPECT_EQ(p.l3_bytes, 2097152);
}

TEST(CalibrationTest, CacheBytesOptionOverridesEnvironment) {
  // Precedence: option > environment > default. An explicit option wins
  // even with all three env vars set.
  ScopedEnv l1("SWOLE_L1_BYTES", "16384");
  ScopedEnv l2("SWOLE_L2_BYTES", "262144");
  ScopedEnv l3("SWOLE_L3_BYTES", "2097152");
  CalibrationOptions options = TinyOptions();
  options.l1_bytes = 32768;
  options.l2_bytes = 524288;
  options.l3_bytes = 4194304;
  CostProfile p = CalibrateCostProfile(options);
  EXPECT_EQ(p.l1_bytes, 32768);
  EXPECT_EQ(p.l2_bytes, 524288);
  EXPECT_EQ(p.l3_bytes, 4194304);

  // A partial override mixes sources per level.
  CalibrationOptions partial = TinyOptions();
  partial.l2_bytes = 524288;
  CostProfile q = CalibrateCostProfile(partial);
  EXPECT_EQ(q.l1_bytes, 16384);   // env
  EXPECT_EQ(q.l2_bytes, 524288);  // option
  EXPECT_EQ(q.l3_bytes, 2097152); // env
}

TEST(CalibrationTest, MalformedCacheBytesEnvKeepsDefaults) {
  // GetEnvInt64 warns on unparseable values and keeps the fallback — a
  // typo'd override must not silently zero a cache capacity.
  const CostProfile defaults = CostProfile::Default();
  ScopedEnv l1("SWOLE_L1_BYTES", "32k");
  ScopedEnv l2("SWOLE_L2_BYTES", "lots");
  ScopedEnv l3("SWOLE_L3_BYTES", "-5");
  CostProfile p = CalibrateCostProfile(TinyOptions());
  EXPECT_EQ(p.l1_bytes, defaults.l1_bytes);
  EXPECT_EQ(p.l2_bytes, defaults.l2_bytes);
  EXPECT_EQ(p.l3_bytes, defaults.l3_bytes);
}

TEST(TextDataTest, AppendAndGet) {
  TextData text;
  EXPECT_EQ(text.size(), 0);
  text.Append("hello");
  text.Append("");
  text.Append("worlds end");
  EXPECT_EQ(text.size(), 3);
  EXPECT_EQ(text.Get(0), "hello");
  EXPECT_EQ(text.Get(1), "");
  EXPECT_EQ(text.Get(2), "worlds end");
  EXPECT_GE(text.ByteSize(), 15);
}

}  // namespace
}  // namespace swole
