// Calibration smoke tests: the probes return sane, ordered values on any
// machine (kept tiny so they run in noise-tolerant CI).

#include <gtest/gtest.h>

#include "cost/calibration.h"
#include "storage/text_data.h"

namespace swole {
namespace {

CalibrationOptions TinyOptions() {
  CalibrationOptions options;
  options.probe_bytes = 1 << 20;
  options.ht_probes = 1 << 14;
  return options;
}

TEST(CalibrationTest, ReadProbesArePositiveAndOrdered) {
  CalibrationOptions options = TinyOptions();
  double seq = MeasureReadSeqNs(options);
  double cond = MeasureReadCondNs(options);
  EXPECT_GT(seq, 0.0);
  EXPECT_LT(seq, 100.0);  // a sequential int32 read is never 100ns
  EXPECT_GT(cond, 0.0);
}

TEST(CalibrationTest, HtLookupGrowsWithTableSize) {
  CalibrationOptions options = TinyOptions();
  double small = MeasureHtLookupNs(1 << 8, options);
  double large = MeasureHtLookupNs(1 << 18, options);
  EXPECT_GT(small, 0.0);
  // Larger tables are never (much) cheaper to probe.
  EXPECT_GT(large, small * 0.5);
}

TEST(CalibrationTest, NullEntryProbeIsCheap) {
  CalibrationOptions options = TinyOptions();
  double null_probe = MeasureHtNullNs(options);
  EXPECT_GT(null_probe, 0.0);
  EXPECT_LT(null_probe, 200.0);
}

TEST(CalibrationTest, NsPerCycleIsPlausible) {
  double ns = MeasureNsPerCycle();
  EXPECT_GT(ns, 0.05);  // no 20GHz machines
  EXPECT_LT(ns, 5.0);   // no 200MHz machines
}

TEST(TextDataTest, AppendAndGet) {
  TextData text;
  EXPECT_EQ(text.size(), 0);
  text.Append("hello");
  text.Append("");
  text.Append("worlds end");
  EXPECT_EQ(text.size(), 3);
  EXPECT_EQ(text.Get(0), "hello");
  EXPECT_EQ(text.Get(1), "");
  EXPECT_EQ(text.Get(2), "worlds end");
  EXPECT_GE(text.ByteSize(), 15);
}

}  // namespace
}  // namespace swole
