// Differential tests for the raw-string kernels (exec/simd_string.h) and
// the access-aware string predicate placement (cost/string_placement.h):
//
//  - every string primitive, on every backend the host supports, must be
//    byte-identical to the scalar reference across value lengths, arena
//    alignments, and needle positions — embedded NUL and non-ASCII bytes
//    included;
//  - the compiled LIKE matcher must agree with common/string_util.h's
//    LikeMatch on randomized pattern × value grids;
//  - string-predicate queries must reproduce the reference oracle under
//    every strategy × backend × thread count × forced placement, both
//    interpreted and JIT-compiled;
//  - the placement decision itself must flip across the selectivity sweep
//    (pull under selective other-qualifications, push otherwise).
//
// Runs under the `strings` ctest label (SWOLE_SIMD shards it per backend).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/generator.h"
#include "codegen/jit.h"
#include "common/string_util.h"
#include "cost/string_placement.h"
#include "engine/reference_engine.h"
#include "exec/kernels.h"
#include "exec/simd.h"
#include "exec/simd_string.h"
#include "micro/micro.h"
#include "storage/string_column.h"
#include "storage/table.h"
#include "strategies/strategy.h"
#include "strategies/swole.h"

namespace swole {
namespace {

using simd::Backend;
using simd::CmpOp;
using simd::CompiledLike;

class BackendGuard {
 public:
  BackendGuard() : saved_(simd::ActiveBackend()) {}
  ~BackendGuard() { simd::SetBackend(saved_); }

 private:
  Backend saved_;
};

// Restores SWOLE_STR_PLACEMENT when a test scope exits (the engines re-read
// it on every Analyze, so setenv is the forcing mechanism).
class PlacementGuard {
 public:
  PlacementGuard() {
    const char* v = std::getenv("SWOLE_STR_PLACEMENT");
    if (v != nullptr) saved_ = v;
  }
  ~PlacementGuard() {
    if (saved_.empty()) {
      unsetenv("SWOLE_STR_PLACEMENT");
    } else {
      setenv("SWOLE_STR_PLACEMENT", saved_.c_str(), 1);
    }
  }
  static void Force(const char* mode) {
    setenv("SWOLE_STR_PLACEMENT", mode, 1);
  }

 private:
  std::string saved_;
};

std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends = {Backend::kScalar, Backend::kSwar};
  if (simd::CpuHasAvx2()) backends.push_back(Backend::kAvx2);
  return backends;
}

std::vector<Backend> AltBackends() {
  std::vector<Backend> backends = SupportedBackends();
  backends.erase(backends.begin());
  return backends;
}

// Value-length classes: empty, sub-word, word-boundary straddlers, and
// multi-vector values.
const int64_t kValueLens[] = {0, 1, 5, 7, 8, 9, 15, 16, 31, 33, 64, 200};

// Columns whose rows start at every offset mod 8: `pad` leading filler
// bytes shift the whole arena, so the word/vector loads inside the kernels
// see every alignment class. The filler lives in row 0, which the sweeps
// skip via start = 1.
StringColumn MakeColumn(const std::vector<std::string>& values,
                        int64_t pad) {
  StringColumn col;
  col.Append(std::string(static_cast<size_t>(pad), '#'));
  for (const std::string& v : values) col.Append(v);
  return col;
}

// Byte soup for the differential sweeps: lowercase background plus rows
// with the needle at the start / middle / end, near-miss rows, embedded
// NUL, and high-bit (non-ASCII) bytes.
std::vector<std::string> MakeValues(int64_t rows, int64_t value_len,
                                    std::string_view needle,
                                    std::mt19937_64* rng) {
  std::uniform_int_distribution<int> letter('a', 'z');
  std::vector<std::string> values;
  values.reserve(static_cast<size_t>(rows));
  const int64_t n = static_cast<int64_t>(needle.size());
  for (int64_t i = 0; i < rows; ++i) {
    std::string v(static_cast<size_t>(value_len), 'x');
    for (char& c : v) c = static_cast<char>(letter(*rng));
    if (value_len >= n && n > 0) {
      switch (i % 8) {
        case 0:  // needle at the very start
          v.replace(0, static_cast<size_t>(n), needle);
          break;
        case 1:  // needle at the very end
          v.replace(static_cast<size_t>(value_len - n),
                    static_cast<size_t>(n), needle);
          break;
        case 2:  // needle mid-row (crosses word boundaries as len varies)
          v.replace(static_cast<size_t>((value_len - n) / 2),
                    static_cast<size_t>(n), needle);
          break;
        case 3: {  // near miss: needle with its last byte corrupted
          std::string miss(needle);
          miss.back() = static_cast<char>(miss.back() ^ 0x01);
          v.replace(static_cast<size_t>((value_len - n) / 2),
                    static_cast<size_t>(n), miss);
          break;
        }
        default:
          break;
      }
    }
    if (i % 5 == 0 && value_len >= 2) v[value_len / 2] = '\0';
    if (i % 7 == 0 && value_len >= 1) v[0] = static_cast<char>(0xC3);
    values.push_back(std::move(v));
  }
  return values;
}

// Runs `fn(out)` under the scalar backend and every alternative backend;
// every byte of `out` must agree.
template <typename Fn>
void DiffAcrossBackends(int64_t len, const char* what, Fn fn) {
  std::vector<uint8_t> expected(static_cast<size_t>(len) + 1, 0xAB);
  simd::SetBackend(Backend::kScalar);
  fn(expected.data());
  for (Backend b : AltBackends()) {
    std::vector<uint8_t> got(static_cast<size_t>(len) + 1, 0xCD);
    simd::SetBackend(b);
    fn(got.data());
    for (int64_t j = 0; j < len; ++j) {
      ASSERT_EQ(got[j], expected[j])
          << what << " under " << simd::BackendName(b) << " len " << len
          << " lane " << j;
    }
  }
}

TEST(StringKernels, EqPrefixSuffixContainsSweep) {
  BackendGuard guard;
  std::mt19937_64 rng(71);
  const std::string needle = "zebra";
  for (int64_t value_len : kValueLens) {
    for (int64_t pad : {0, 1, 3, 7}) {
      std::vector<std::string> values =
          MakeValues(33, value_len, needle, &rng);
      // One exact-equality row so StrEqLit sees a hit at every length.
      if (!values.empty()) values[4] = values[0];
      StringColumn col = MakeColumn(values, pad);
      const uint8_t* bytes = col.bytes();
      const uint32_t* offsets = col.offsets();
      const int64_t len = col.size() - 1;
      const std::string lit = values.empty() ? "" : values[0];

      DiffAcrossBackends(len, "StrEqLit", [&](uint8_t* out) {
        kernels::StrEqLit(bytes, offsets, 1, len, lit, out);
      });
      DiffAcrossBackends(len, "StrPrefix", [&](uint8_t* out) {
        kernels::StrPrefix(bytes, offsets, 1, len, "ze", out);
      });
      DiffAcrossBackends(len, "StrSuffix", [&](uint8_t* out) {
        kernels::StrSuffix(bytes, offsets, 1, len, "ra", out);
      });
      DiffAcrossBackends(len, "StrContains", [&](uint8_t* out) {
        kernels::StrContains(bytes, offsets, 1, len, needle, out);
      });
      // Needle containing an embedded NUL: matching stays byte-exact.
      DiffAcrossBackends(len, "StrContainsNul", [&](uint8_t* out) {
        kernels::StrContains(bytes, offsets, 1, len,
                             std::string_view("a\0b", 3), out);
      });
    }
  }
}

TEST(StringKernels, CmpLitAllOpsSweep) {
  BackendGuard guard;
  std::mt19937_64 rng(72);
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                       CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  for (int64_t value_len : {0LL, 1LL, 7LL, 8LL, 9LL, 33LL}) {
    for (int64_t pad : {0, 5}) {
      std::vector<std::string> values =
          MakeValues(29, value_len, "mm", &rng);
      StringColumn col = MakeColumn(values, pad);
      const int64_t len = col.size() - 1;
      // Literals shorter than / equal to / longer than the rows exercise
      // the length tiebreak; the empty literal orders before everything.
      for (const std::string& lit :
           {std::string("m"), std::string(static_cast<size_t>(value_len), 'm'),
            std::string("mmmmmmmmmmmm"), std::string()}) {
        for (CmpOp op : ops) {
          DiffAcrossBackends(len, "StrCmpLit", [&](uint8_t* out) {
            kernels::StrCmpLit(op, col.bytes(), col.offsets(), 1, len, lit,
                               out);
          });
        }
      }
    }
  }
}

TEST(StringKernels, FindFirstNeedlePositions) {
  BackendGuard guard;
  // Candidate-order contract: the returned index is the leftmost match on
  // every tier, even with repeated near-matches before it.
  std::mt19937_64 rng(73);
  std::uniform_int_distribution<int> letter('a', 'e');  // dense false hits
  for (int64_t hlen : {1LL, 7LL, 8LL, 9LL, 63LL, 64LL, 65LL, 1000LL}) {
    std::string hay(static_cast<size_t>(hlen), 'x');
    for (char& c : hay) c = static_cast<char>(letter(rng));
    for (const std::string& needle :
         {std::string("a"), std::string("ab"), std::string("abcabc"),
          std::string("zz"), std::string("\0a", 2)}) {
      for (int64_t plant = -1; plant <= hlen; plant += 7) {
        std::string h = hay;
        if (plant >= 0 &&
            plant + static_cast<int64_t>(needle.size()) <= hlen) {
          h.replace(static_cast<size_t>(plant), needle.size(), needle);
        }
        simd::SetBackend(Backend::kScalar);
        int64_t expected = kernels::StrFindFirst(
            reinterpret_cast<const uint8_t*>(h.data()), hlen,
            reinterpret_cast<const uint8_t*>(needle.data()),
            static_cast<int64_t>(needle.size()));
        for (Backend b : AltBackends()) {
          simd::SetBackend(b);
          EXPECT_EQ(kernels::StrFindFirst(
                        reinterpret_cast<const uint8_t*>(h.data()), hlen,
                        reinterpret_cast<const uint8_t*>(needle.data()),
                        static_cast<int64_t>(needle.size())),
                    expected)
              << simd::BackendName(b) << " hlen " << hlen << " needle size "
              << needle.size() << " plant " << plant;
        }
      }
    }
  }
}

TEST(StringKernels, HashTileMatchesFnv1a) {
  BackendGuard guard;
  std::mt19937_64 rng(74);
  std::vector<std::string> values = MakeValues(64, 23, "zebra", &rng);
  values[0].clear();  // empty row hashes to the seed
  StringColumn col = MakeColumn(values, 3);
  const int64_t len = col.size() - 1;
  for (Backend b : SupportedBackends()) {
    simd::SetBackend(b);
    std::vector<uint64_t> hashes(static_cast<size_t>(len));
    kernels::StrHashTile(col.bytes(), col.offsets(), 1, len, hashes.data());
    for (int64_t j = 0; j < len; ++j) {
      EXPECT_EQ(hashes[j], Fnv1aHash64(values[static_cast<size_t>(j)]))
          << simd::BackendName(b) << " row " << j;
    }
  }
}

TEST(StringKernels, LikeTileShapesAndMaskedRefine) {
  BackendGuard guard;
  std::mt19937_64 rng(75);
  // One pattern per compiled shape (simd_string.h CompiledLike::Kind).
  const struct {
    const char* pattern;
    bool negated;
  } patterns[] = {
      {"%", false},                     // kAll
      {"zebra", false},                 // kEquals
      {"ze%", false},                   // kPrefix
      {"%ra", false},                   // kSuffix
      {"%zebra%", false},               // kContains
      {"ze%ra%", false},                // kTokens, anchored prefix
      {"%ze%bra", false},               // kTokens, anchored suffix
      {"%ze_ra%", false},               // kGeneral ('_')
      {"%zebra%", true},                // NOT LIKE folds into every shape
      {"ze_ra", true},                  // negated kGeneral
  };
  for (int64_t value_len : {0LL, 5LL, 9LL, 33LL}) {
    std::vector<std::string> values = MakeValues(41, value_len, "zebra",
                                                 &rng);
    StringColumn col = MakeColumn(values, 1);
    const int64_t len = col.size() - 1;
    for (const auto& p : patterns) {
      const CompiledLike lk = simd::CompileLike(p.pattern, p.negated);
      DiffAcrossBackends(len, p.pattern, [&](uint8_t* out) {
        kernels::StrLikeTile(col.bytes(), col.offsets(), 1, len, lk, out);
      });
      // Guarded refine: dead lanes stay untouched, live lanes AND in the
      // match — equivalent to StrLikeTile wherever cmp[j] was 1.
      std::vector<uint8_t> cmp(static_cast<size_t>(len) + 1);
      for (int64_t j = 0; j < len; ++j) {
        cmp[j] = static_cast<uint8_t>(rng() & 1);
      }
      std::vector<uint8_t> full(static_cast<size_t>(len) + 1, 0xEE);
      simd::SetBackend(Backend::kScalar);
      kernels::StrLikeTile(col.bytes(), col.offsets(), 1, len, lk,
                           full.data());
      for (Backend b : SupportedBackends()) {
        simd::SetBackend(b);
        std::vector<uint8_t> refined = cmp;
        kernels::StrLikeTileAnd(col.bytes(), col.offsets(), 1, len, lk,
                                refined.data());
        for (int64_t j = 0; j < len; ++j) {
          ASSERT_EQ(refined[j], cmp[j] ? full[j] : 0)
              << p.pattern << " under " << simd::BackendName(b) << " lane "
              << j;
        }
        // Per-row entry point agrees with the tile.
        for (int64_t j = 0; j < len; ++j) {
          ASSERT_EQ(kernels::StrLikeOne(col.bytes(), col.offsets(), 1 + j,
                                        lk),
                    full[j] != 0)
              << p.pattern << " under " << simd::BackendName(b) << " row "
              << j;
        }
      }
    }
  }
}

// Randomized CompiledLike-vs-LikeMatch differential: the compiled shapes
// (and the '_' fallback) must agree with the two-pointer reference in
// common/string_util.h on arbitrary pattern × value pairs.
TEST(StringKernels, CompiledLikeMatchesStringUtilReference) {
  BackendGuard guard;
  std::mt19937_64 rng(76);
  std::uniform_int_distribution<int> piece_kind(0, 5);
  std::uniform_int_distribution<int> letter('a', 'd');  // dense collisions
  std::uniform_int_distribution<int> run_len(1, 4);
  auto random_pattern = [&]() {
    std::string p;
    const int pieces = static_cast<int>(rng() % 5);
    for (int i = 0; i < pieces; ++i) {
      switch (piece_kind(rng)) {
        case 0:
          p += '%';
          break;
        case 1:
          p += '_';
          break;
        default: {
          const int n = run_len(rng);
          for (int j = 0; j < n; ++j) {
            p += static_cast<char>(letter(rng));
          }
          break;
        }
      }
    }
    return p;
  };
  auto random_value = [&]() {
    std::string v;
    const int n = static_cast<int>(rng() % 12);
    for (int j = 0; j < n; ++j) {
      const int k = static_cast<int>(rng() % 10);
      if (k == 0) {
        v += '\0';
      } else if (k == 1) {
        v += static_cast<char>(0xE2);
      } else {
        v += static_cast<char>(letter(rng));
      }
    }
    return v;
  };
  for (int iter = 0; iter < 400; ++iter) {
    const std::string pattern = random_pattern();
    StringColumn col;
    std::vector<std::string> values;
    for (int r = 0; r < 8; ++r) {
      values.push_back(random_value());
      col.Append(values.back());
    }
    for (bool negated : {false, true}) {
      const CompiledLike lk = simd::CompileLike(pattern, negated);
      for (Backend b : SupportedBackends()) {
        simd::SetBackend(b);
        for (int r = 0; r < 8; ++r) {
          const bool expected =
              LikeMatch(values[static_cast<size_t>(r)], pattern) != negated;
          ASSERT_EQ(kernels::StrLikeOne(col.bytes(), col.offsets(), r, lk),
                    expected)
              << "pattern \"" << pattern << "\" value len "
              << values[static_cast<size_t>(r)].size() << " negated "
              << negated << " backend " << simd::BackendName(b);
        }
      }
    }
  }
}

// ---- Placement decision ----

class StringPlacementTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MicroConfig config;
    config.r_rows = 20'001;  // several tiles; not a multiple of 1024
    config.s_small_rows = 100;
    config.s_large_rows = 3'000;
    config.c_cardinalities = {10, 97};
    config.seed = 13;
    data_ = MicroData::Generate(config).release();
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static MicroData* data_;
};

MicroData* StringPlacementTest::data_ = nullptr;

TEST_F(StringPlacementTest, DecisionFlipsAcrossTheSelectivitySweep) {
  PlacementGuard env;
  PlacementGuard::Force("auto");
  // sigma_other ~ sel/100: selective dim filters leave few survivors, so
  // pulling the LIKE above the join wins; permissive ones push it down.
  // The plans outlive the splits — `pulled` aliases their filter trees.
  const QueryPlan selective = MicroQ6(false, 5);
  const QueryPlan permissive = MicroQ6(false, 95);
  StringPredSplit low =
      DecideStringPlacement(selective, data_->catalog, CostProfile::Default());
  StringPredSplit high = DecideStringPlacement(permissive, data_->catalog,
                                               CostProfile::Default());
  EXPECT_TRUE(low.pull) << low.rationale;
  EXPECT_FALSE(high.pull) << high.rationale;
  ASSERT_EQ(low.pulled.size(), 1u);
  EXPECT_EQ(low.pulled[0]->kind, ExprKind::kLike);
  EXPECT_EQ(low.scan_filter, nullptr);  // the LIKE was the whole filter
  EXPECT_NE(high.scan_filter, nullptr);

  // Forced modes override the model in both directions.
  PlacementGuard::Force("push");
  EXPECT_FALSE(
      DecideStringPlacement(selective, data_->catalog, CostProfile::Default())
          .pull);
  PlacementGuard::Force("pull");
  EXPECT_TRUE(DecideStringPlacement(permissive, data_->catalog,
                                    CostProfile::Default())
                  .pull);
}

TEST_F(StringPlacementTest, SwoleDecisionsRecordThePullup) {
  PlacementGuard env;
  PlacementGuard::Force("auto");
  auto engine = MakeSwoleStrategy(data_->catalog);
  // Deliberately passes temporaries: consecutive plan temporaries reuse a
  // stack address, so this also regression-tests the analysis cache's
  // plan-name validity check (a stale hit would chase dangling pointers
  // into the first temporary's filter tree).
  ASSERT_TRUE(engine->Execute(MicroQ6(false, 5)).ok());
  EXPECT_TRUE(engine->last_decisions().used_string_pullup)
      << engine->last_decisions().rationale;
  ASSERT_TRUE(engine->Execute(MicroQ6(false, 95)).ok());
  EXPECT_FALSE(engine->last_decisions().used_string_pullup)
      << engine->last_decisions().rationale;
}

// ---- Query-level bit-exactness ----
//
// Every strategy engine, under every backend, at 1/2/8 threads, with the
// placement forced both ways and decided automatically, must reproduce
// the reference oracle (which runs scalar, pushed).

class StringQueryTest : public StringPlacementTest {
 protected:
  static void CheckAcrossBackends(const QueryPlan& plan) {
    BackendGuard guard;
    PlacementGuard env;
    PlacementGuard::Force("push");
    simd::SetBackend(Backend::kScalar);
    ReferenceEngine oracle(data_->catalog);
    Result<QueryResult> expected = oracle.Execute(plan);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    for (const char* placement : {"push", "pull", "auto"}) {
      PlacementGuard::Force(placement);
      for (Backend back : SupportedBackends()) {
        simd::SetBackend(back);
        for (int threads : {1, 2, 8}) {
          for (StrategyKind kind :
               {StrategyKind::kDataCentric, StrategyKind::kHybrid,
                StrategyKind::kRof, StrategyKind::kSwole}) {
            StrategyOptions options;
            options.tile_size = 1024;
            options.num_threads = threads;
            std::unique_ptr<Strategy> engine =
                MakeStrategy(kind, data_->catalog, options);
            Result<QueryResult> actual = engine->Execute(plan);
            ASSERT_TRUE(actual.ok())
                << engine->name() << ": " << actual.status().ToString();
            EXPECT_EQ(*actual, *expected)
                << engine->name() << " under " << simd::BackendName(back)
                << " at " << threads << " threads, placement " << placement
                << ", diverges on " << plan.name;
          }
        }
      }
    }
  }
};

TEST_F(StringQueryTest, LikeOnlyScan) {
  QueryPlan plan;
  plan.name = "like_only";
  plan.fact_table = "r";
  plan.fact_filter = Like("r_s", "%zebra%");
  plan.aggs.emplace_back(AggKind::kSum, Mul(Col("r_a"), Col("r_b")),
                         "sum_ab");
  CheckAcrossBackends(plan);
}

TEST_F(StringQueryTest, LikeJoinSelective) {
  CheckAcrossBackends(MicroQ6(false, 10));
}

TEST_F(StringQueryTest, LikeJoinPermissive) {
  CheckAcrossBackends(MicroQ6(true, 80));
}

TEST_F(StringQueryTest, NotLikeWithNumericConjunct) {
  QueryPlan plan = MicroQ6(false, 50);
  plan.name = "notlike_mixed";
  plan.fact_filter =
      And(NotLike("r_s", "%zebra%"), Lt(Col("r_x"), Lit(60)));
  CheckAcrossBackends(plan);
}

TEST_F(StringQueryTest, GroupByWithPulledLike) {
  QueryPlan plan;
  plan.name = "like_groupby";
  plan.fact_table = "r";
  plan.fact_filter = Like("r_s", "%zebra%");
  DimJoin dim;
  dim.hop = {"r_fk_small", "s_small", "s_pk"};
  dim.filter = Lt(Col("s_x"), Lit(15));
  plan.dims.push_back(std::move(dim));
  plan.group_by = Col(data_->c_columns[0]);
  plan.group_cardinality_hint = data_->c_actual[0];
  plan.aggs.emplace_back(AggKind::kSum, Mul(Col("r_a"), Col("r_b")),
                         "sum_ab");
  CheckAcrossBackends(plan);
}

// ---- JIT differential ----
//
// The generated kernels honor the same split: source shape follows the
// placement, results match the oracle either way.

TEST_F(StringPlacementTest, JitHonorsPlacementAndMatchesOracle) {
  BackendGuard guard;
  PlacementGuard env;
  PlacementGuard::Force("push");
  simd::SetBackend(Backend::kScalar);
  ReferenceEngine oracle(data_->catalog);
  const QueryPlan plan = MicroQ6(false, 30);
  QueryResult expected = oracle.Execute(plan).value();

  for (const char* placement : {"push", "pull"}) {
    PlacementGuard::Force(placement);
    // No ROF: the generator has no ROF emission (interpreted only).
    for (StrategyKind kind :
         {StrategyKind::kDataCentric, StrategyKind::kHybrid,
          StrategyKind::kSwole}) {
      codegen::GeneratorOptions options;
      options.strategy = kind;
      Result<codegen::GeneratedKernel> kernel =
          codegen::GenerateKernel(plan, data_->catalog, options);
      ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
      const bool pulled = std::string(placement) == "pull";
      if (kind != StrategyKind::kDataCentric) {
        // Pushed LIKE runs in the prepass tile kernel; pulled LIKE runs
        // as a guarded refine (masked pipelines) or per-survivor check.
        EXPECT_EQ(kernel->source.find("StrLikeTile(") != std::string::npos,
                  !pulled)
            << StrategyKindName(kind) << " placement " << placement;
      }
      if (pulled) {
        EXPECT_TRUE(
            kernel->source.find("StrLikeTileAnd(") != std::string::npos ||
            kernel->source.find("StrLikeOne(") != std::string::npos)
            << StrategyKindName(kind) << "\n"
            << kernel->source;
      }
      Result<std::unique_ptr<codegen::CompiledKernel>> compiled =
          codegen::GenerateAndCompile(plan, data_->catalog, options);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      Result<QueryResult> actual = (*compiled)->Run(data_->catalog);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(*actual, expected)
          << StrategyKindName(kind) << " placement " << placement
          << "\nsource:\n"
          << (*compiled)->kernel().source;
    }
  }
}

}  // namespace
}  // namespace swole
