// Unit tests for the §III cost models: formula values, the decision
// boundaries the paper describes (memory-bound vs compute-bound, small vs
// large hash tables, eager aggregation vs groupjoin), and the compute
// introspection estimates.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "expr/expr.h"

namespace swole {
namespace {

CostProfile Profile() { return CostProfile::Default(); }

TEST(CostModelTest, HtLookupIsSteppedByCacheLevel) {
  CostProfile p = Profile();
  EXPECT_EQ(p.HtLookup(1024), p.ht_lookup_l1);
  EXPECT_EQ(p.HtLookup(p.l1_bytes + 1), p.ht_lookup_l2);
  EXPECT_EQ(p.HtLookup(p.l2_bytes + 1), p.ht_lookup_l3);
  EXPECT_EQ(p.HtLookup(p.l3_bytes + 1), p.ht_lookup_mem);
  EXPECT_LT(p.ht_lookup_l1, p.ht_lookup_mem);
}

TEST(CostModelTest, HybridScalesWithSelectivity) {
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 1.0;
  w.selectivity = 0.0;
  double at0 = HybridCost(p, w);
  w.selectivity = 1.0;
  double at100 = HybridCost(p, w);
  EXPECT_LT(at0, at100);
  // At sigma=0 only the selection read remains.
  EXPECT_DOUBLE_EQ(at0, w.rows * p.read_seq);
}

TEST(CostModelTest, ValueMaskingIsSelectivityInvariant) {
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 1.0;
  w.selectivity = 0.1;
  double lo = ValueMaskingCost(p, w);
  w.selectivity = 0.9;
  double hi = ValueMaskingCost(p, w);
  EXPECT_DOUBLE_EQ(lo, hi);
}

TEST(CostModelTest, MemoryBoundAggregationPrefersValueMasking) {
  // §III-A: if the aggregation is memory-bound, pullups win; the hybrid
  // pays the conditional read per selected tuple.
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 0.2;  // trivial compute => memory-bound
  w.selectivity = 0.5;
  EXPECT_EQ(ChooseAggregation(p, w), AggChoice::kValueMasking);
}

TEST(CostModelTest, ComputeBoundAggregationPrefersHybrid) {
  // §III-A: "if the aggregation is compute-bound, the hybrid approach is
  // superior" — the model keeps hybrid for all sigma < 1 (the very-high-
  // selectivity crossover of Fig. 8b is an empirical second-order effect),
  // and the two costs converge as sigma -> 1.
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 12.0;  // division-dominated
  w.selectivity = 0.3;
  EXPECT_EQ(ChooseAggregation(p, w), AggChoice::kHybridFallback);
  w.selectivity = 1.0;
  EXPECT_NEAR(HybridCost(p, w), ValueMaskingCost(p, w),
              0.01 * ValueMaskingCost(p, w));
}

TEST(CostModelTest, LargeHashTablePrefersKeyMaskingOverValueMasking) {
  // §III-B: unconditional lookups in a big table dominate VM's cost; KM's
  // masked tuples hit the cached throwaway instead.
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 0.5;
  w.selectivity = 0.5;
  w.group_ht_bytes = p.l3_bytes * 4;  // memory-resident
  EXPECT_LT(KeyMaskingCost(p, w), ValueMaskingCost(p, w));
}

TEST(CostModelTest, SmallHashTableMakesMaskingVariantsComparable) {
  // Fig. 9a/9b: with a cached table the two masking variants are close.
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 0.5;
  w.selectivity = 0.5;
  w.group_ht_bytes = 1024;
  double vm = ValueMaskingCost(p, w);
  double km = KeyMaskingCost(p, w);
  EXPECT_LT(std::abs(vm - km) / vm, 0.5);
}

TEST(CostModelTest, VeryLargeTablePrefersHybrid) {
  // Fig. 9d: hybrid outperforms all masking variants when the memory-
  // resident lookup dominates (the paper's measured ~85% crossover comes
  // from memory-level parallelism the per-access model does not capture).
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 0.5;
  w.group_ht_bytes = p.l3_bytes * 16;
  w.selectivity = 0.2;
  EXPECT_EQ(ChooseAggregation(p, w), AggChoice::kHybridFallback);
  // But key masking is the best *masking* variant there.
  EXPECT_LT(KeyMaskingCost(p, w), ValueMaskingCost(p, w));
}

TEST(CostModelTest, ManyReadColumnsTipGroupedAggToKeyMasking) {
  // The TPC-H Q1 situation: a cached (tiny) group table, a compute-heavy
  // aggregate over ~7 columns. Hybrid pays 7 conditional reads per
  // selected tuple; key masking pays 7 sequential ones.
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 3.0;
  w.selectivity = 0.98;
  w.group_ht_bytes = 1024;  // 6 groups
  w.num_read_columns = 7;
  EXPECT_EQ(ChooseAggregation(p, w), AggChoice::kKeyMasking);
}

TEST(CostModelTest, ScalarNeverPicksKeyMasking) {
  CostProfile p = Profile();
  AggWorkload w;
  w.rows = 1e6;
  w.comp_ns = 0.2;
  w.selectivity = 0.5;
  w.group_ht_bytes = 0;
  EXPECT_NE(ChooseAggregation(p, w), AggChoice::kKeyMasking);
}

TEST(CostModelTest, EagerAggregationPrefersSmallGroupTables) {
  // Fig. 12a vs 12b: EA is nearly always better with a 1K-key table but
  // needs higher selectivity at 1M keys.
  CostProfile p = Profile();
  GroupjoinWorkload w;
  w.r_rows = 1e8;
  w.s_rows = 1e3;
  w.sigma_s = 0.5;
  w.sigma_r = 1.0;
  w.match_prob = 0.5;
  w.comp_ns = 0.5;
  w.ht_bytes = 16 << 10;
  w.ea_ht_bytes = 32 << 10;
  EXPECT_TRUE(ChooseEagerAggregation(p, w));

  // Large table at low selectivity: groupjoin (few probes pay off).
  w.s_rows = 1e6;
  w.sigma_s = 0.05;
  w.match_prob = 0.05;
  w.ht_bytes = 2 << 20;            // qualifying keys only
  w.ea_ht_bytes = 64 << 20;        // every key, memory-resident
  EXPECT_FALSE(ChooseEagerAggregation(p, w));
}

TEST(CostModelTest, GroupjoinCostGrowsWithMatchProbability) {
  CostProfile p = Profile();
  GroupjoinWorkload w;
  w.r_rows = 1e6;
  w.s_rows = 1e4;
  w.sigma_s = 0.5;
  w.sigma_r = 1.0;
  w.comp_ns = 1.0;
  w.ht_bytes = 1 << 20;
  w.match_prob = 0.1;
  double lo = GroupjoinCost(p, w);
  w.match_prob = 0.9;
  double hi = GroupjoinCost(p, w);
  EXPECT_LT(lo, hi);
}

TEST(CostModelTest, ComputeIntrospection) {
  CostProfile p = Profile();
  ExprPtr mul = Mul(Col("a"), Col("b"));
  ExprPtr div = Div(Col("a"), Col("b"));
  // Division is far more expensive than multiplication (Fig. 8a vs 8b).
  EXPECT_GT(EstimateComputeNs(p, *div), 3 * EstimateComputeNs(p, *mul));
  // Nested expressions accumulate.
  ExprPtr big = Mul(Mul(Col("a"), Col("b")), Add(Lit(100), Col("c")));
  EXPECT_GT(EstimateComputeNs(p, *big), EstimateComputeNs(p, *mul));
}

TEST(CostModelTest, ChoiceNamesAreStable) {
  EXPECT_STREQ(AggChoiceName(AggChoice::kValueMasking), "value-masking");
  EXPECT_STREQ(AggChoiceName(AggChoice::kKeyMasking), "key-masking");
  EXPECT_STREQ(AggChoiceName(AggChoice::kHybridFallback), "hybrid");
}

TEST(CostModelTest, ProfileToStringMentionsAllFields) {
  std::string s = Profile().ToString();
  EXPECT_NE(s.find("read_seq"), std::string::npos);
  EXPECT_NE(s.find("ht_lookup"), std::string::npos);
}

}  // namespace
}  // namespace swole
